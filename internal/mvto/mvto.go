// Package mvto implements multi-version timestamp ordering, the scheme
// §5.1 explicitly contrasts with the prototype's bounded write history:
//
//	"It should be noted however that this is not the same as
//	multi-version timestamp ordering (MVTO). In the MVTO case,
//	timestamped versions are maintained so that if a read operation
//	arrives late, based on the versions, the value written by the last
//	write with a timestamp lesser than this read is returned."
//
// Under MVTO a late read never aborts — it is served the old version —
// whereas the paper's engine returns the *present* value and uses the
// history only to meter inconsistency. This package exists as an
// ablation comparator (esr-bench -fig cc): serializable like SR, but
// with multi-version reads instead of aborts.
//
// Rules implemented (Bernstein et al., ch. 5):
//
//   - read(T, x): return the version of x with the largest write
//     timestamp ≤ ts(T); record ts(T) as a read timestamp on that
//     version. If that version is uncommitted, wait for its outcome
//     (recoverability), integrating with the harness timeline.
//   - write(T, x): find the version v with the largest write timestamp
//     ≤ ts(T); if some transaction read v with a timestamp greater than
//     ts(T), the write would invalidate that read — abort T. Otherwise
//     install an uncommitted version at ts(T).
//   - commit/abort: mark or remove T's versions; waiters are woken with
//     timeline crediting.
//
// Versions are pruned to a bounded count per object.
package mvto

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnshard"
)

// AbortError mirrors tso.AbortError for the MVTO engine.
type AbortError = tso.AbortError

// DefaultMaxVersions bounds the retained committed versions per object.
const DefaultMaxVersions = 32

// version is one (possibly uncommitted) version of an object.
type version struct {
	wts       tsgen.Timestamp
	value     core.Value
	writer    core.TxnID
	committed bool
	// maxRead is the largest timestamp that read this version.
	maxRead tsgen.Timestamp
	// waiters are readers blocked on this version's outcome.
	waiters []*waiter
}

// waiter is one blocked reader.
type waiter struct {
	ch     chan struct{}
	parked bool
}

// object is the multi-version state of one object.
type object struct {
	id core.ObjectID
	mu sync.Mutex
	// versions are sorted by ascending write timestamp.
	versions []*version
}

// txnState is one attempt's footprint.
type txnState struct {
	id     core.TxnID
	ts     tsgen.Timestamp
	kind   core.Kind
	writes []*object
	ops    int64
}

// Engine is the MVTO engine; it satisfies the experiment harness's
// Engine interface.
type Engine struct {
	objects     map[core.ObjectID]*object
	col         *metrics.Collector
	parker      tso.Parker
	maxVersions int

	nextTxn atomic.Uint64
	// txns is sharded by transaction id so Begin/lookup/remove from
	// concurrent connections do not serialize on one engine-wide lock.
	txns *txnshard.Map[*txnState]

	// store and dur support durable commits: the engine's private version
	// chains are the read path, but logged commits are also applied to
	// the backing store so WAL snapshots and recovery see them.
	store *storage.Store
	dur   storage.Durability

	// tracer, when set, receives the same execution events the TO engine
	// emits (schema esr-trace/1), so recorded MVTO histories feed the
	// same offline checker. Limits are always zero: MVTO is a
	// serializable baseline and ignores bounds.
	tracer tso.Tracer
	// now stamps trace events; wall clock since engine creation.
	now func() time.Duration
}

// SetDurability routes commits through d. Call before serving traffic.
func (e *Engine) SetDurability(d storage.Durability) { e.dur = d }

// SetTracer installs a trace-event consumer. Call before serving traffic.
func (e *Engine) SetTracer(t tso.Tracer) { e.tracer = t }

// trace emits an event if a tracer is installed, stamping it with the
// engine's timeline.
func (e *Engine) trace(ev tso.Event) {
	if e.tracer != nil {
		ev.At = e.now()
		e.tracer.Trace(ev)
	}
}

// NewEngine builds an MVTO engine over the committed values of a store.
// The store is only read at construction; the engine keeps its own
// version chains.
func NewEngine(store *storage.Store, col *metrics.Collector, parker tso.Parker) *Engine {
	start := time.Now()
	e := &Engine{
		objects:     make(map[core.ObjectID]*object),
		col:         col,
		parker:      parker,
		maxVersions: DefaultMaxVersions,
		txns:        txnshard.New[*txnState](),
		store:       store,
		now:         func() time.Duration { return time.Since(start) },
	}
	for _, id := range store.IDs() {
		o, err := store.Get(id)
		if err != nil {
			continue
		}
		o.Lock()
		initial := o.CommittedValue()
		o.Unlock()
		e.objects[id] = &object{id: id, versions: []*version{{
			wts: tsgen.None, value: initial, committed: true,
		}}}
	}
	return e
}

// Begin starts an attempt; the bound specification is ignored (MVTO is a
// serializable baseline).
func (e *Engine) Begin(kind core.Kind, ts tsgen.Timestamp, _ core.BoundSpec) (core.TxnID, error) {
	if kind != core.Query && kind != core.Update {
		return 0, fmt.Errorf("mvto: invalid transaction kind %d", kind)
	}
	st := &txnState{id: core.TxnID(e.nextTxn.Add(1)), ts: ts, kind: kind}
	e.txns.Store(st.id, st)
	e.col.Begin()
	e.trace(tso.Event{Kind: tso.EvBegin, Txn: st.id, TxnKind: kind, TS: ts})
	return st.id, nil
}

func (e *Engine) lookup(txn core.TxnID) (*txnState, error) {
	st, ok := e.txns.Load(txn)
	if !ok {
		return nil, tso.ErrUnknownTxn
	}
	return st, nil
}

// Read returns the version visible at the attempt's timestamp, waiting
// for an uncommitted visible version to resolve.
func (e *Engine) Read(txn core.TxnID, obj core.ObjectID) (core.Value, error) {
	st, err := e.lookup(txn)
	if err != nil {
		return 0, err
	}
	o := e.objects[obj]
	if o == nil {
		return 0, e.abortNow(st, metrics.AbortMissingObject,
			fmt.Errorf("mvto: object %d does not exist", obj))
	}
	o.mu.Lock()
	for {
		v := visibleVersion(o.versions, st.ts)
		if v == nil {
			// Every retained version is younger than the reader: the
			// version it needs was pruned.
			o.mu.Unlock()
			return 0, e.abortNow(st, metrics.AbortLateRead,
				fmt.Errorf("mvto: visible version of object %d pruned", obj))
		}
		if v.committed || v.writer == st.id {
			if st.ts.After(v.maxRead) {
				v.maxRead = st.ts
			}
			value := v.value
			e.trace(tso.Event{Kind: tso.EvRead, Txn: st.id, TxnKind: st.kind, TS: st.ts,
				Object: o.id, Value: value, Version: v.wts})
			o.mu.Unlock()
			st.ops++
			e.col.ReadExecuted(false)
			return value, nil
		}
		// Visible but uncommitted by another attempt: wait for its
		// outcome (the writer is older — MVTO never waits on younger
		// writers because visibility is by timestamp).
		w := &waiter{ch: make(chan struct{}), parked: e.parker != nil}
		v.waiters = append(v.waiters, w)
		o.mu.Unlock()
		e.col.Waited()
		if w.parked {
			e.parker.Suspend()
		}
		<-w.ch
		// The attempt may have been finished (explicitly aborted) while
		// blocked; its cleanup and metrics ran there, so re-resolve it
		// before touching any more shared state.
		if _, err := e.lookup(txn); err != nil {
			return 0, err
		}
		o.mu.Lock()
	}
}

// Write installs an uncommitted version at the attempt's timestamp,
// aborting if a younger transaction already read the version this write
// would supersede.
func (e *Engine) Write(txn core.TxnID, obj core.ObjectID, value core.Value) error {
	_, err := e.write(txn, obj, value, false)
	return err
}

// WriteDelta writes visible+delta, returning the value written.
func (e *Engine) WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error) {
	return e.write(txn, obj, delta, true)
}

func (e *Engine) write(txn core.TxnID, obj core.ObjectID, v core.Value, isDelta bool) (core.Value, error) {
	st, err := e.lookup(txn)
	if err != nil {
		return 0, err
	}
	if st.kind != core.Update {
		return 0, e.abortNow(st, metrics.AbortOther,
			fmt.Errorf("mvto: write from a %s ET", st.kind))
	}
	o := e.objects[obj]
	if o == nil {
		return 0, e.abortNow(st, metrics.AbortMissingObject,
			fmt.Errorf("mvto: object %d does not exist", obj))
	}
	o.mu.Lock()
	prev := visibleVersion(o.versions, st.ts)
	if prev == nil {
		o.mu.Unlock()
		return 0, e.abortNow(st, metrics.AbortLateWrite,
			fmt.Errorf("mvto: predecessor version of object %d pruned", obj))
	}
	if prev.maxRead.After(st.ts) {
		// A younger reader consumed the version we would overwrite.
		o.mu.Unlock()
		return 0, e.abortNow(st, metrics.AbortLateWrite,
			fmt.Errorf("mvto: version of object %d read at %v, write at %v too late",
				obj, prev.maxRead, st.ts))
	}
	if prev.writer == st.id && !prev.committed && prev.wts == st.ts {
		// Second write by the same attempt: overwrite in place.
		newValue := v
		if isDelta {
			newValue = prev.value + v
		}
		prev.value = newValue
		e.trace(tso.Event{Kind: tso.EvWrite, Txn: st.id, TxnKind: st.kind, TS: st.ts,
			Object: o.id, Value: newValue, Version: st.ts})
		o.mu.Unlock()
		st.ops++
		e.col.WriteExecuted(false)
		return newValue, nil
	}
	newValue := v
	if isDelta {
		newValue = prev.value + v
	}
	nv := &version{wts: st.ts, value: newValue, writer: st.id}
	o.versions = insertVersion(o.versions, nv)
	e.trace(tso.Event{Kind: tso.EvWrite, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Object: o.id, Value: newValue, Version: st.ts})
	o.mu.Unlock()
	st.writes = append(st.writes, o)
	st.ops++
	e.col.WriteExecuted(false)
	return newValue, nil
}

// Live reports the number of live transactions (begun, not yet finished).
func (e *Engine) Live() int { return e.txns.Len() }

// Commit marks the attempt's versions committed and wakes waiters. The
// shard's atomic check-and-delete is the double-finish guard.
//
// With durability set, the write set is captured from the attempt's
// uncommitted versions and logged; the publish callback resolves the
// version chains and mirrors the writes into the backing store (the
// store is MVTO's durable image — its private chains are rebuilt from
// it on recovery).
func (e *Engine) Commit(txn core.TxnID) error {
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	if e.dur == nil {
		for _, o := range st.writes {
			e.resolveVersions(o, st.id, true)
		}
		e.col.Commit()
		e.trace(tso.Event{Kind: tso.EvCommit, Txn: st.id, TxnKind: st.kind, TS: st.ts})
		return nil
	}
	rec := &storage.TxnCommit{Txn: st.id, Kind: st.kind, TS: st.ts}
	if len(st.writes) > 0 {
		rec.Writes = make([]storage.CommittedWrite, 0, len(st.writes))
		for _, o := range st.writes {
			o.mu.Lock()
			for _, v := range o.versions {
				if v.writer == st.id && !v.committed {
					rec.Writes = append(rec.Writes, storage.CommittedWrite{
						Object: o.id, Value: v.value, TS: v.wts,
					})
				}
			}
			o.mu.Unlock()
		}
	}
	publish := func() {
		for _, o := range st.writes {
			e.resolveVersions(o, st.id, true)
		}
		for _, w := range rec.Writes {
			// Best-effort mirror: the store object can be missing when the
			// engine was seeded from a different store generation.
			_ = e.store.ApplyCommitted(w.Object, w.Value, w.TS)
		}
	}
	durAck, durErr := e.dur.LogCommit(rec, publish)
	if durErr != nil {
		publish()
	}
	e.col.Commit()
	e.trace(tso.Event{Kind: tso.EvCommit, Txn: st.id, TxnKind: st.kind, TS: st.ts})
	if durErr == nil && durAck != nil {
		durErr = durAck.Wait()
	}
	if durErr != nil {
		return &tso.DurabilityError{Txn: st.id, Err: durErr}
	}
	return nil
}

// Abort removes the attempt's versions and wakes waiters.
func (e *Engine) Abort(txn core.TxnID) error {
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	e.finishAbort(st, metrics.AbortExplicit)
	return nil
}

func (e *Engine) abortNow(st *txnState, reason metrics.AbortReason, cause error) error {
	_, registered := e.txns.Delete(st.id)
	// Finish only if no other goroutine beat us to it: finishing twice
	// would double-count the abort and re-resolve versions.
	if registered {
		e.finishAbort(st, reason)
	}
	return &AbortError{Txn: st.id, Reason: reason, Err: cause}
}

func (e *Engine) finishAbort(st *txnState, reason metrics.AbortReason) {
	for _, o := range st.writes {
		e.resolveVersions(o, st.id, false)
	}
	e.col.Abort(reason, st.ops)
	e.trace(tso.Event{Kind: tso.EvAbort, Txn: st.id, TxnKind: st.kind, TS: st.ts})
}

// resolveVersions commits or removes txn's uncommitted versions on an
// object, waking and crediting any readers blocked on them, and prunes
// old committed versions beyond the retention bound.
func (e *Engine) resolveVersions(o *object, txn core.TxnID, commit bool) {
	o.mu.Lock()
	var wake []*waiter
	kept := o.versions[:0]
	for _, v := range o.versions {
		if v.writer != txn || v.committed {
			kept = append(kept, v)
			continue
		}
		wake = append(wake, v.waiters...)
		v.waiters = nil
		if commit {
			v.committed = true
			kept = append(kept, v)
		}
	}
	o.versions = kept
	// Prune: keep at most maxVersions committed versions (and all
	// uncommitted ones).
	if n := len(o.versions); n > e.maxVersions {
		drop := n - e.maxVersions
		pruned := o.versions[:0]
		for _, v := range o.versions {
			if drop > 0 && v.committed {
				drop--
				continue
			}
			pruned = append(pruned, v)
		}
		o.versions = pruned
	}
	o.mu.Unlock()
	for _, w := range wake {
		if w.parked && e.parker != nil {
			e.parker.Resume()
		}
		close(w.ch)
	}
}

// visibleVersion returns the version with the largest write timestamp
// ≤ ts, or nil if none is retained.
func visibleVersion(versions []*version, ts tsgen.Timestamp) *version {
	// Versions are sorted ascending by wts; binary search for the first
	// version strictly younger than ts.
	i := sort.Search(len(versions), func(i int) bool { return versions[i].wts.After(ts) })
	if i == 0 {
		return nil
	}
	return versions[i-1]
}

// insertVersion keeps the slice sorted by write timestamp.
func insertVersion(versions []*version, v *version) []*version {
	i := sort.Search(len(versions), func(i int) bool { return versions[i].wts.After(v.wts) })
	versions = append(versions, nil)
	copy(versions[i+1:], versions[i:])
	versions[i] = v
	return versions
}
