package wire

import (
	"bytes"
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
)

// TestRecycleResetsMessages pins the pooling contract: a recycled struct
// handed out again by the decode factory must be indistinguishable from
// a fresh one, field by field, including map and nested fields.
func TestRecycleResetsMessages(t *testing.T) {
	b := &Begin{Kind: core.Update, Timestamp: 42}
	b.Spec = core.UnboundedSpec().WithGroup("g", 7).WithObject(3, 9)
	Recycle(b)
	if b.Kind != 0 || b.Timestamp != 0 || b.Spec.Transaction != 0 ||
		b.Spec.Groups != nil || b.Spec.Objects != nil {
		t.Errorf("recycled Begin not zeroed: %+v", *b)
	}
	w := &Write{Txn: 1, Object: 2, Delta: true, Value: 3}
	Recycle(w)
	if *w != (Write{}) {
		t.Errorf("recycled Write not zeroed: %+v", *w)
	}
	e := &Error{Code: CodeAbort, Reason: metrics.AbortLateRead, Message: "boom"}
	Recycle(e)
	if *e != (Error{}) {
		t.Errorf("recycled Error not zeroed: %+v", *e)
	}
	s := &StatsOK{Live: 5}
	s.Snapshot.Begins = 9
	s.Latencies[0].Sum = 1
	Recycle(s)
	if *s != (StatsOK{}) {
		t.Errorf("recycled StatsOK not zeroed")
	}
}

// TestDecodeSteadyStateAllocFree is the fast-path guarantee the server
// loop relies on: with messages recycled after use, decoding allocates
// nothing per frame in steady state.
func TestDecodeSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts are meaningless")
	}
	var buf bytes.Buffer
	w := NewConn(&buf)
	const n = 64
	for i := 0; i < n; i++ {
		if err := w.WriteMessage(&Write{Txn: 1, Object: 2, Value: 3}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	r := NewConn(readWriter{bytes.NewReader(raw)})
	// Warm the conn buffer and the message pool outside the measurement.
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	Recycle(m)
	allocs := testing.AllocsPerRun(10, func() {
		r.rw.(readWriter).Reader.Seek(0, 0)
		r.br.Reset(r.rw)
		for i := 0; i < n; i++ {
			m, err := r.ReadMessage()
			if err != nil {
				t.Fatal(err)
			}
			Recycle(m)
		}
	})
	if perMsg := allocs / n; perMsg > 0 {
		t.Errorf("steady-state decode allocates %.2f per message, want 0", perMsg)
	}
}

// TestConnRetainedBuffersCapped pins the fix for the unbounded rbuf
// growth: a frame larger than maxRetainedPayload must decode correctly
// yet leave neither conn holding a buffer above the cap.
func TestConnRetainedBuffersCapped(t *testing.T) {
	// appendStr caps strings at 64KiB-1, which together with the code and
	// reason bytes pushes the payload just past maxRetainedPayload.
	big := &Error{Code: CodeGeneric, Message: strings.Repeat("x", 1<<16)}
	var buf bytes.Buffer
	w := NewConn(&buf)
	if err := w.WriteMessage(big); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) > maxRetainedPayload+8 {
		t.Errorf("write side retains %d bytes after oversized frame, cap is %d",
			cap(w.buf), maxRetainedPayload+8)
	}
	r := NewConn(&buf)
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Error).Message; got != big.Message[:0xFFFF] {
		t.Errorf("oversized frame corrupted: got %d bytes", len(got))
	}
	if cap(r.rbuf) > maxRetainedPayload {
		t.Errorf("read side retains %d bytes after oversized frame, cap is %d",
			cap(r.rbuf), maxRetainedPayload)
	}
	// The conn still works for ordinary frames afterwards.
	if err := w.WriteMessage(&OK{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMessage(); err != nil {
		t.Fatal(err)
	}
}
