package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/metrics"
)

// latSet builds a LatencySet with a few observations per path.
func latSet() metrics.LatencySet {
	c := &metrics.Collector{}
	c.ObserveLatency(metrics.LatRead, 120*time.Microsecond)
	c.ObserveLatency(metrics.LatRead, 350*time.Microsecond)
	c.ObserveLatency(metrics.LatWrite, time.Millisecond)
	c.ObserveLatency(metrics.LatCommit, 75*time.Microsecond)
	c.ObserveLatency(metrics.LatWait, 9*time.Millisecond)
	return c.LatencySnapshot()
}

func TestStatsOKRoundTripWithHistograms(t *testing.T) {
	m := &StatsOK{
		Snapshot: metrics.Snapshot{
			Begins: 10, Commits: 7, AbortLateWrite: 2, Waits: 4, WastedOps: 9,
		},
		ProperMisses: 3,
		Live:         2,
		Latencies:    latSet(),
	}
	got := roundTrip(t, m).(*StatsOK)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("StatsOK round trip mismatch:\n got %+v\nwant %+v", got.Latencies, m.Latencies)
	}
	// Percentiles survive the wire.
	if p := got.Latencies[metrics.LatWait].Quantile(0.99); p < int64(9*time.Millisecond) {
		t.Errorf("wait p99 after round trip = %d, want >= 9ms", p)
	}
	if got.Latencies.Ops().Count != 3 {
		t.Errorf("ops count after round trip = %d, want 3", got.Latencies.Ops().Count)
	}
}

func TestStatsOKEmptyHistogramsStaySmall(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMessage(&StatsOK{}); err != nil {
		t.Fatal(err)
	}
	// 8-byte header + 20 counters + histogram count byte + 4 empty
	// histograms (sum + zero bucket count each). Sparse encoding keeps
	// the idle frame under 100 bytes where dense bucket arrays would be
	// ~16 KB.
	if buf.Len() > 256 {
		t.Errorf("idle StatsOK frame = %d bytes, want sparse encoding", buf.Len())
	}
	got, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &StatsOK{}) {
		t.Errorf("empty StatsOK round trip = %+v", got)
	}
}

// TestReadMessageReusesBuffer pins the grow-only receive buffer: decoding
// many messages through one conn must not allocate a fresh payload per
// frame, and successive decodes must not alias each other's data.
func TestReadMessageReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(&buf)
	first := &Error{Code: CodeGeneric, Message: "first message text"}
	second := &Error{Code: CodeAbort, Reason: metrics.AbortLateRead, Message: "second"}
	if err := w.WriteMessage(first); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMessage(second); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	m1, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	// The second decode reuses the first's backing array; the first
	// message must still hold its own copy of the string.
	if e1 := m1.(*Error); e1.Message != "first message text" {
		t.Errorf("first message corrupted by buffer reuse: %q", e1.Message)
	}
	if e2 := m2.(*Error); e2.Message != "second" {
		t.Errorf("second message = %q", e2.Message)
	}
}

func TestReadMessageAllocsAmortized(t *testing.T) {
	// Pre-encode N identical frames, then measure decode allocations.
	var buf bytes.Buffer
	w := NewConn(&buf)
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.WriteMessage(&Write{Txn: 1, Object: 2, Value: 3}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	allocs := testing.AllocsPerRun(5, func() {
		r := NewConn(readWriter{bytes.NewReader(raw)})
		for i := 0; i < n; i++ {
			if _, err := r.ReadMessage(); err != nil {
				t.Fatal(err)
			}
		}
	})
	// One message struct and one payload reader per frame are inherent;
	// the payload buffer itself must amortize to zero. The old
	// make-per-frame path measures ~3 allocations per message.
	if perMsg := allocs / n; perMsg > 2.5 {
		t.Errorf("ReadMessage allocations per message = %.2f, want <= 2.5", perMsg)
	}
}

// readWriter adapts a read-only stream to Conn's io.ReadWriter.
type readWriter struct{ *bytes.Reader }

func (readWriter) Write(p []byte) (int, error) { return len(p), nil }
