package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

func TestTaggedRoundTrip(t *testing.T) {
	msgs := []Message{
		&Tagged{Tag: 1, Inner: &Begin{Kind: core.Update, Timestamp: tsgen.Make(9, 2), Spec: core.BoundSpec{Transaction: 500}}},
		&Tagged{Tag: 0xFFFFFFFF, Inner: &Read{Txn: 7, Object: 12}},
		&Tagged{Tag: 3, Inner: &Write{Txn: 7, Object: 9, Delta: true, Value: -4}},
		&Tagged{Tag: 4, Inner: &Commit{Txn: 7}},
		&Tagged{Tag: 5, Inner: &Sync{ClientTicks: 99}},
		&TaggedReply{Tag: 1, Inner: &BeginOK{Txn: 31}},
		&TaggedReply{Tag: 2, Inner: &Value{Value: 88}},
		&TaggedReply{Tag: 3, Inner: &OK{}},
		&TaggedReply{Tag: 4, Inner: &Error{Code: CodeAbort, Reason: metrics.AbortLateRead, Message: "late"}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip of %v:\n got %#v\nwant %#v", m.MsgType(), got, m)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{Ops: []BatchItem{
		{Tag: 10, Msg: &Begin{Kind: core.Query, Timestamp: tsgen.Make(3, 1), Spec: core.BoundSpec{Transaction: 100}}},
		{Tag: 11, Msg: &Read{Txn: 4, Object: 2}},
		{Tag: 12, Msg: &Write{Txn: 4, Object: 5, Value: 77}},
		{Tag: 13, Msg: &Commit{Txn: 4}},
		{Tag: 14, Msg: &Abort{Txn: 6}},
	}}
	if got := roundTrip(t, b); !reflect.DeepEqual(got, b) {
		t.Errorf("Batch round trip:\n got %#v\nwant %#v", got, b)
	}
	r := &BatchReply{Replies: []BatchItem{
		{Tag: 10, Msg: &BeginOK{Txn: 9}},
		{Tag: 11, Msg: &Value{Value: 1}},
		{Tag: 13, Msg: &Error{Code: CodeGeneric, Message: "unknown txn"}},
	}}
	if got := roundTrip(t, r); !reflect.DeepEqual(got, r) {
		t.Errorf("BatchReply round trip:\n got %#v\nwant %#v", got, r)
	}
	// An empty batch is legal on the wire (if pointless).
	if got := roundTrip(t, &Batch{}); len(got.(*Batch).Ops) != 0 {
		t.Errorf("empty Batch decoded with %d ops", len(got.(*Batch).Ops))
	}
}

// failRoundTrip encodes m, optionally corrupts the raw frame, and
// returns the decode error.
func failRoundTrip(t *testing.T, m Message, corrupt func([]byte)) error {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMessage(m); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	if corrupt != nil {
		corrupt(buf.Bytes())
	}
	_, err := NewConn(&buf).ReadMessage()
	if err == nil {
		t.Fatalf("decode of corrupted %v succeeded", m.MsgType())
	}
	return err
}

func TestBatchChecksumRejectsCorruption(t *testing.T) {
	b := &Batch{Ops: []BatchItem{
		{Tag: 1, Msg: &Read{Txn: 2, Object: 3}},
		{Tag: 2, Msg: &Write{Txn: 2, Object: 4, Value: 5}},
	}}
	// Flip one bit in the item section (past the 8-byte frame header and
	// the 4-byte checksum); the CRC must catch it before any op decodes.
	err := failRoundTrip(t, b, func(raw []byte) { raw[len(raw)-1] ^= 0x01 })
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted batch error = %v, want checksum mismatch", err)
	}
}

func TestEnvelopesDoNotNest(t *testing.T) {
	cases := []Message{
		&Tagged{Tag: 1, Inner: &Tagged{Tag: 2, Inner: &Read{}}},
		&Tagged{Tag: 1, Inner: &Batch{}},
		&TaggedReply{Tag: 1, Inner: &TaggedReply{Tag: 2, Inner: &OK{}}},
		&TaggedReply{Tag: 1, Inner: &BatchReply{}},
	}
	for _, m := range cases {
		err := failRoundTrip(t, m, nil)
		if !strings.Contains(err.Error(), "cannot be carried") {
			t.Errorf("nested %v error = %v, want nesting rejection", m.MsgType(), err)
		}
	}
	// Responses cannot ride request envelopes and vice versa.
	if err := failRoundTrip(t, &Tagged{Tag: 1, Inner: &OK{}}, nil); !strings.Contains(err.Error(), "cannot be carried") {
		t.Errorf("Tagged(OK) error = %v", err)
	}
	if err := failRoundTrip(t, &TaggedReply{Tag: 1, Inner: &Read{}}, nil); !strings.Contains(err.Error(), "cannot be carried") {
		t.Errorf("TaggedReply(Read) error = %v", err)
	}
}

func TestBatchRejectsUnbatchableOps(t *testing.T) {
	cases := []Message{
		&Batch{Ops: []BatchItem{{Tag: 1, Msg: &Sync{ClientTicks: 1}}}},
		&Batch{Ops: []BatchItem{{Tag: 1, Msg: &Stats{}}}},
		&Batch{Ops: []BatchItem{{Tag: 1, Msg: &Batch{}}}},
	}
	for _, m := range cases {
		err := failRoundTrip(t, m, nil)
		if !strings.Contains(err.Error(), "cannot be carried") {
			t.Errorf("unbatchable op error = %v", err)
		}
	}
}

func TestTaggableBatchable(t *testing.T) {
	for _, tc := range []struct {
		t                   MsgType
		taggable, batchable bool
	}{
		{MsgBegin, true, true},
		{MsgRead, true, true},
		{MsgWrite, true, true},
		{MsgCommit, true, true},
		{MsgAbort, true, true},
		{MsgSync, true, false},
		{MsgStats, true, false},
		{MsgTagged, false, false},
		{MsgBatch, false, false},
		{MsgBeginOK, false, false},
		{MsgError, false, false},
		{MsgTaggedReply, false, false},
		{MsgBatchReply, false, false},
	} {
		if got := Taggable(tc.t); got != tc.taggable {
			t.Errorf("Taggable(%v) = %v, want %v", tc.t, got, tc.taggable)
		}
		if got := Batchable(tc.t); got != tc.batchable {
			t.Errorf("Batchable(%v) = %v, want %v", tc.t, got, tc.batchable)
		}
	}
}

func TestEnvelopeRecycleContract(t *testing.T) {
	// Envelope recycling is shallow: the inner message survives (its
	// ownership moved to the demultiplexer) while the wrapper zeroes.
	inner := &Read{Txn: 1, Object: 2}
	tg := &Tagged{Tag: 7, Inner: inner}
	Recycle(tg)
	if tg.Tag != 0 || tg.Inner != nil {
		t.Errorf("recycled Tagged not zeroed: %+v", *tg)
	}
	if inner.Txn != 1 || inner.Object != 2 {
		t.Errorf("Tagged recycle clobbered the inner message: %+v", *inner)
	}
	// Batch recycling zeroes the items but keeps the slice capacity, so
	// steady batch traffic stops allocating item arrays.
	b := &Batch{Ops: []BatchItem{{Tag: 1, Msg: inner}, {Tag: 2, Msg: &Commit{Txn: 1}}}}
	kept := cap(b.Ops)
	Recycle(b)
	if len(b.Ops) != 0 || cap(b.Ops) != kept {
		t.Errorf("recycled Batch: len=%d cap=%d, want len=0 cap=%d", len(b.Ops), cap(b.Ops), kept)
	}
}

// TestPipelinedDecodeSteadyStateAllocFree extends the 0-alloc decode
// guarantee to tagged frames: the envelope and its inner message both
// come from pools, so a pipelined request stream still allocates nothing
// per frame once warm.
func TestPipelinedDecodeSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts are meaningless")
	}
	var buf bytes.Buffer
	w := NewConn(&buf)
	const n = 64
	for i := 0; i < n; i++ {
		if err := w.WriteMessage(&Tagged{Tag: uint32(i), Inner: &Write{Txn: 1, Object: 2, Value: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	r := NewConn(readWriter{bytes.NewReader(raw)})
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	tg := m.(*Tagged)
	Recycle(tg.Inner)
	Recycle(tg)
	allocs := testing.AllocsPerRun(10, func() {
		r.rw.(readWriter).Reader.Seek(0, 0)
		r.br.Reset(r.rw)
		for i := 0; i < n; i++ {
			m, err := r.ReadMessage()
			if err != nil {
				t.Fatal(err)
			}
			tg := m.(*Tagged)
			Recycle(tg.Inner)
			Recycle(tg)
		}
	})
	if perMsg := allocs / n; perMsg > 0 {
		t.Errorf("steady-state tagged decode allocates %.2f per message, want 0", perMsg)
	}
}
