package wire

import (
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// Begin opens a transaction attempt. It carries the paper's BEGIN block:
// the transaction kind, the client-generated timestamp, the transaction
// limit (TIL or TEL) and the optional hierarchical LIMIT statements and
// per-object overrides (§3.1).
type Begin struct {
	Kind      core.Kind
	Timestamp tsgen.Timestamp
	Spec      core.BoundSpec
}

// MsgType implements Message.
func (*Begin) MsgType() MsgType { return MsgBegin }

func (m *Begin) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, uint8(m.Kind))
	dst = appendU64(dst, uint64(m.Timestamp))
	dst = appendI64(dst, m.Spec.Transaction)
	dst = appendU16(dst, uint16(len(m.Spec.Groups)))
	for name, limit := range m.Spec.Groups {
		dst = appendStr(dst, name)
		dst = appendI64(dst, limit)
	}
	dst = appendU16(dst, uint16(len(m.Spec.Objects)))
	for obj, limit := range m.Spec.Objects {
		dst = appendU32(dst, uint32(obj))
		dst = appendI64(dst, limit)
	}
	return dst
}

func (m *Begin) decodePayload(r *reader) {
	m.Kind = core.Kind(r.u8("kind"))
	m.Timestamp = tsgen.Timestamp(r.u64("timestamp"))
	m.Spec.Transaction = r.i64("transaction limit")
	nGroups := int(r.u16("group count"))
	if nGroups > 0 {
		m.Spec.Groups = make(map[string]core.Distance, nGroups)
		for i := 0; i < nGroups && r.err == nil; i++ {
			name := r.str("group name")
			m.Spec.Groups[name] = r.i64("group limit")
		}
	}
	nObjects := int(r.u16("object count"))
	if nObjects > 0 {
		m.Spec.Objects = make(map[core.ObjectID]core.Distance, nObjects)
		for i := 0; i < nObjects && r.err == nil; i++ {
			obj := core.ObjectID(r.u32("object id"))
			m.Spec.Objects[obj] = r.i64("object limit")
		}
	}
}

// Read asks for the value of one object.
type Read struct {
	Txn    core.TxnID
	Object core.ObjectID
}

// MsgType implements Message.
func (*Read) MsgType() MsgType { return MsgRead }

func (m *Read) appendPayload(dst []byte) []byte {
	dst = appendU64(dst, uint64(m.Txn))
	return appendU32(dst, uint32(m.Object))
}

func (m *Read) decodePayload(r *reader) {
	m.Txn = core.TxnID(r.u64("txn"))
	m.Object = core.ObjectID(r.u32("object"))
}

// Write installs a new value (absolute or current+delta).
type Write struct {
	Txn    core.TxnID
	Object core.ObjectID
	// Delta selects increment mode: the server writes current+Value.
	Delta bool
	Value core.Value
}

// MsgType implements Message.
func (*Write) MsgType() MsgType { return MsgWrite }

func (m *Write) appendPayload(dst []byte) []byte {
	dst = appendU64(dst, uint64(m.Txn))
	dst = appendU32(dst, uint32(m.Object))
	mode := uint8(0)
	if m.Delta {
		mode = 1
	}
	dst = appendU8(dst, mode)
	return appendI64(dst, m.Value)
}

func (m *Write) decodePayload(r *reader) {
	m.Txn = core.TxnID(r.u64("txn"))
	m.Object = core.ObjectID(r.u32("object"))
	m.Delta = r.u8("mode") != 0
	m.Value = r.i64("value")
}

// Commit finishes an attempt successfully.
type Commit struct{ Txn core.TxnID }

// MsgType implements Message.
func (*Commit) MsgType() MsgType { return MsgCommit }

func (m *Commit) appendPayload(dst []byte) []byte { return appendU64(dst, uint64(m.Txn)) }
func (m *Commit) decodePayload(r *reader)         { m.Txn = core.TxnID(r.u64("txn")) }

// Abort abandons an attempt at the client's request.
type Abort struct{ Txn core.TxnID }

// MsgType implements Message.
func (*Abort) MsgType() MsgType { return MsgAbort }

func (m *Abort) appendPayload(dst []byte) []byte { return appendU64(dst, uint64(m.Txn)) }
func (m *Abort) decodePayload(r *reader)         { m.Txn = core.TxnID(r.u64("txn")) }

// Sync is the clock-synchronization probe: the client sends its local
// ticks, the server responds with its own, and the client derives the
// correction factor for virtually synchronized timestamps (§6).
type Sync struct{ ClientTicks int64 }

// MsgType implements Message.
func (*Sync) MsgType() MsgType { return MsgSync }

func (m *Sync) appendPayload(dst []byte) []byte { return appendI64(dst, m.ClientTicks) }
func (m *Sync) decodePayload(r *reader)         { m.ClientTicks = r.i64("client ticks") }

// Stats requests the server's performance counters.
type Stats struct{}

// MsgType implements Message.
func (*Stats) MsgType() MsgType { return MsgStats }

func (m *Stats) appendPayload(dst []byte) []byte { return dst }
func (m *Stats) decodePayload(*reader)           {}

// BeginOK acknowledges Begin with the attempt id.
type BeginOK struct{ Txn core.TxnID }

// MsgType implements Message.
func (*BeginOK) MsgType() MsgType { return MsgBeginOK }

func (m *BeginOK) appendPayload(dst []byte) []byte { return appendU64(dst, uint64(m.Txn)) }
func (m *BeginOK) decodePayload(r *reader)         { m.Txn = core.TxnID(r.u64("txn")) }

// Value answers Read and Write with the value read or actually written.
type Value struct{ Value core.Value }

// MsgType implements Message.
func (*Value) MsgType() MsgType { return MsgValue }

func (m *Value) appendPayload(dst []byte) []byte { return appendI64(dst, m.Value) }
func (m *Value) decodePayload(r *reader)         { m.Value = r.i64("value") }

// OK acknowledges Commit and Abort.
type OK struct{}

// MsgType implements Message.
func (*OK) MsgType() MsgType { return MsgOK }

func (m *OK) appendPayload(dst []byte) []byte { return dst }
func (m *OK) decodePayload(*reader)           {}

// SyncOK answers Sync with the server clock reading.
type SyncOK struct{ ServerTicks int64 }

// MsgType implements Message.
func (*SyncOK) MsgType() MsgType { return MsgSyncOK }

func (m *SyncOK) appendPayload(dst []byte) []byte { return appendI64(dst, m.ServerTicks) }
func (m *SyncOK) decodePayload(r *reader)         { m.ServerTicks = r.i64("server ticks") }

// StatsOK carries the server's counters, the live-transaction gauge, and
// the per-path latency histograms (sparse-encoded: only nonzero buckets
// travel, so an idle server's stats frame stays tiny).
type StatsOK struct {
	Snapshot     metrics.Snapshot
	ProperMisses int64
	// Live is the number of transactions currently open in the engine.
	Live int64
	// Latencies holds one histogram per engine path (read, write,
	// commit, wait), from which clients derive percentiles.
	Latencies metrics.LatencySet
}

// MsgType implements Message.
func (*StatsOK) MsgType() MsgType { return MsgStatsOK }

func (m *StatsOK) appendPayload(dst []byte) []byte {
	s := &m.Snapshot
	for _, v := range []int64{
		s.Begins, s.Commits,
		s.AbortLateRead, s.AbortLateWrite, s.AbortImportLimit, s.AbortExportLimit,
		s.AbortWaitTimeout, s.AbortMissingObject, s.AbortExplicit, s.AbortDeadlock, s.AbortOther,
		s.ReadsExecuted, s.WritesExecuted, s.InconsistentReads, s.InconsistentWrites,
		s.WastedOps, s.Waits, s.DirtySourceAborted, m.ProperMisses, m.Live,
	} {
		dst = appendI64(dst, v)
	}
	dst = appendU8(dst, uint8(len(m.Latencies)))
	for i := range m.Latencies {
		dst = appendHistogram(dst, &m.Latencies[i])
	}
	return dst
}

func (m *StatsOK) decodePayload(r *reader) {
	s := &m.Snapshot
	for _, p := range []*int64{
		&s.Begins, &s.Commits,
		&s.AbortLateRead, &s.AbortLateWrite, &s.AbortImportLimit, &s.AbortExportLimit,
		&s.AbortWaitTimeout, &s.AbortMissingObject, &s.AbortExplicit, &s.AbortDeadlock, &s.AbortOther,
		&s.ReadsExecuted, &s.WritesExecuted, &s.InconsistentReads, &s.InconsistentWrites,
		&s.WastedOps, &s.Waits, &s.DirtySourceAborted, &m.ProperMisses, &m.Live,
	} {
		*p = r.i64("counter")
	}
	n := int(r.u8("histogram count"))
	for i := 0; i < n && r.err == nil; i++ {
		var h metrics.HistogramSnapshot
		decodeHistogram(r, &h)
		if i < len(m.Latencies) {
			m.Latencies[i] = h
		}
	}
}

// appendHistogram sparse-encodes a histogram snapshot: sum, then the
// number of nonzero buckets followed by (index, count) pairs. The total
// count is reconstructed from the buckets on decode.
func appendHistogram(dst []byte, h *metrics.HistogramSnapshot) []byte {
	dst = appendI64(dst, h.Sum)
	nonZero := 0
	for _, c := range h.Counts {
		if c != 0 {
			nonZero++
		}
	}
	dst = appendU16(dst, uint16(nonZero))
	for i, c := range h.Counts {
		if c != 0 {
			dst = appendU16(dst, uint16(i))
			dst = appendI64(dst, c)
		}
	}
	return dst
}

func decodeHistogram(r *reader, h *metrics.HistogramSnapshot) {
	h.Sum = r.i64("histogram sum")
	n := int(r.u16("histogram bucket count"))
	for i := 0; i < n && r.err == nil; i++ {
		idx := int(r.u16("bucket index"))
		c := r.i64("bucket count")
		if idx < len(h.Counts) {
			h.Counts[idx] = c
			h.Count += c
		}
	}
}

// ErrCode classifies Error responses.
type ErrCode uint8

const (
	// CodeGeneric is a non-abort failure (protocol misuse, unknown txn).
	CodeGeneric ErrCode = iota
	// CodeAbort reports an engine abort; Reason carries the cause and
	// the client retries with a fresh timestamp.
	CodeAbort
	// CodeRedirect reports that a replica cannot serve the request
	// (update transaction, TIL=0 query, or replica-only protocol rule);
	// the client should retry the same request against the primary.
	CodeRedirect
)

// Error is the failure response.
type Error struct {
	Code    ErrCode
	Reason  metrics.AbortReason
	Message string
}

// MsgType implements Message.
func (*Error) MsgType() MsgType { return MsgError }

func (m *Error) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, uint8(m.Code))
	dst = appendU8(dst, uint8(m.Reason))
	return appendStr(dst, m.Message)
}

func (m *Error) decodePayload(r *reader) {
	m.Code = ErrCode(r.u8("code"))
	m.Reason = metrics.AbortReason(r.u8("reason"))
	m.Message = r.str("message")
}

// Error implements the error interface so responses can flow as Go
// errors on the client side.
func (m *Error) Error() string {
	if m.Code == CodeAbort {
		return "server abort (" + m.Reason.String() + "): " + m.Message
	}
	return "server error: " + m.Message
}
