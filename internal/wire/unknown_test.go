package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestUnknownMessageTypedError checks that an unknown frame type yields
// the typed error with the offending tag, and that the frame's payload
// is consumed so the stream stays usable.
func TestUnknownMessageTypedError(t *testing.T) {
	var buf bytes.Buffer
	// Hand-crafted frame: unknown type 0x2A with a 3-byte payload,
	// followed by a well-formed Stats request.
	buf.Write([]byte{Magic[0], Magic[1], Version, 0x2A, 0, 0, 0, 3, 9, 9, 9})
	c := NewConn(&buf)
	if err := c.WriteMessage(&Stats{}); err != nil {
		t.Fatal(err)
	}

	_, err := c.ReadMessage()
	var unknown *ErrUnknownMessage
	if !errors.As(err, &unknown) {
		t.Fatalf("ReadMessage error = %v (%T), want *ErrUnknownMessage", err, err)
	}
	if unknown.Tag != 0x2A {
		t.Errorf("Tag = %d, want 42", unknown.Tag)
	}

	// The unknown frame was consumed whole: the next read must decode
	// the Stats frame, not resynchronize mid-garbage.
	m, err := c.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage after unknown frame: %v", err)
	}
	if m.MsgType() != MsgStats {
		t.Errorf("next message = %v, want Stats", m.MsgType())
	}
}
