package wire

import "sync"

// Message pooling: the server decodes one request and encodes one
// response per round trip, and with synchronous RPC (§6) the previous
// frame's structs are always dead by the time the next one arrives. The
// decode factory therefore draws message structs from per-type pools and
// Recycle returns them, so a steady-state request loop allocates nothing
// for the messages themselves. Decoding copies everything it retains, so
// a recycled struct never aliases connection buffers.
//
// Recycling is opt-in: code that stores a decoded message beyond the
// round trip (clients keeping an *Error, tests inspecting responses)
// simply never calls Recycle and the struct is garbage collected as
// before. Recycle must not be called twice for the same message, and the
// message must not be touched after it is recycled.

// pools is indexed by MsgType. Entries without a constructor stay nil
// and fall through to ErrUnknownMessage in the decode factory.
var pools [MsgReplicaRecords + 1]*sync.Pool

func init() {
	mk := func(f func() Message) *sync.Pool {
		return &sync.Pool{New: func() any { return f() }}
	}
	pools[MsgBegin] = mk(func() Message { return &Begin{} })
	pools[MsgRead] = mk(func() Message { return &Read{} })
	pools[MsgWrite] = mk(func() Message { return &Write{} })
	pools[MsgCommit] = mk(func() Message { return &Commit{} })
	pools[MsgAbort] = mk(func() Message { return &Abort{} })
	pools[MsgSync] = mk(func() Message { return &Sync{} })
	pools[MsgStats] = mk(func() Message { return &Stats{} })
	pools[MsgBeginOK] = mk(func() Message { return &BeginOK{} })
	pools[MsgValue] = mk(func() Message { return &Value{} })
	pools[MsgOK] = mk(func() Message { return &OK{} })
	pools[MsgSyncOK] = mk(func() Message { return &SyncOK{} })
	pools[MsgStatsOK] = mk(func() Message { return &StatsOK{} })
	pools[MsgError] = mk(func() Message { return &Error{} })
	pools[MsgTagged] = mk(func() Message { return &Tagged{} })
	pools[MsgBatch] = mk(func() Message { return &Batch{} })
	pools[MsgTaggedReply] = mk(func() Message { return &TaggedReply{} })
	pools[MsgBatchReply] = mk(func() Message { return &BatchReply{} })
	pools[MsgReplicaHello] = mk(func() Message { return &ReplicaHello{} })
	pools[MsgReplicaSnap] = mk(func() Message { return &ReplicaSnap{} })
	pools[MsgReplicaRecords] = mk(func() Message { return &ReplicaRecords{} })
}

// Recycle resets a message to its zero value and returns it to the
// decode pool. Safe for any message struct of this package, whether or
// not it came from a pool; messages of unknown dynamic type are left to
// the garbage collector.
func Recycle(m Message) {
	switch v := m.(type) {
	case *Begin:
		// Dropping the Spec maps is deliberate: decode allocates fresh
		// maps per message, and Begin is off the per-operation hot path.
		*v = Begin{}
	case *Read:
		*v = Read{}
	case *Write:
		*v = Write{}
	case *Commit:
		*v = Commit{}
	case *Abort:
		*v = Abort{}
	case *Sync:
		*v = Sync{}
	case *Stats:
		*v = Stats{}
	case *BeginOK:
		*v = BeginOK{}
	case *Value:
		*v = Value{}
	case *OK:
		*v = OK{}
	case *SyncOK:
		*v = SyncOK{}
	case *StatsOK:
		*v = StatsOK{}
	case *Error:
		*v = Error{}
	case *Tagged:
		// Envelope recycling is shallow: ownership of the inner message
		// usually moves to whoever demultiplexed it (the server's
		// dispatcher, the client's waiter slot), so the wrapper only drops
		// its reference. Callers still owning the inner message recycle it
		// separately.
		*v = Tagged{}
	case *TaggedReply:
		*v = TaggedReply{}
	case *Batch:
		// Item slots are zeroed but the slice capacity is retained, so a
		// steady stream of batches stops allocating item arrays.
		for i := range v.Ops {
			v.Ops[i] = BatchItem{}
		}
		v.Ops = v.Ops[:0]
	case *BatchReply:
		for i := range v.Replies {
			v.Replies[i] = BatchItem{}
		}
		v.Replies = v.Replies[:0]
	case *ReplicaHello:
		*v = ReplicaHello{}
	case *ReplicaSnap:
		// Byte buffers keep their capacity: a bootstrap transfers many
		// equally sized chunks through the same pooled struct.
		*v = ReplicaSnap{Chunk: v.Chunk[:0]}
	case *ReplicaRecords:
		*v = ReplicaRecords{Frames: v.Frames[:0]}
	default:
		return
	}
	pools[m.MsgType()].Put(m)
}
