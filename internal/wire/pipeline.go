package wire

import (
	"fmt"
	"hash/crc32"
)

// Pipelining and batching (DESIGN.md §12). The base protocol is strictly
// synchronous: one untagged request per connection, answered in order.
// Two envelope frame pairs lift that limit without touching the base
// encoding, so a depth-1 client remains byte-identical to the seed
// protocol:
//
//   - Tagged / TaggedReply carry one inner request or response plus a
//     32-bit tag the server echoes, letting a connection hold many
//     requests in flight and letting responses return out of order
//     (commit acks waiting on the WAL's group-commit fsync complete
//     asynchronously while later reads proceed).
//
//   - Batch / BatchReply carry N tagged operations in one CRC-guarded
//     frame, amortizing the per-frame header, the flush and the syscall
//     across the ops. The server answers inline ops with one BatchReply
//     and may interleave asynchronous commit acks, so a batch's replies
//     can arrive split across frames; tags, not frame boundaries, are
//     the unit of correlation.
//
// Envelopes never nest: an envelope carrying another envelope is a
// protocol error at decode time. Batch semantics are per-op: each inner
// op succeeds or fails alone, exactly as if sent in its own frame; the
// batch is a transport optimization, not an atomicity domain.

// Taggable reports whether a request type may ride inside a Tagged
// envelope: any concrete request except the envelopes themselves.
func Taggable(t MsgType) bool {
	return t < responseBase && t != MsgTagged && t != MsgBatch
}

// responseBase is the first response MsgType value (mirrored by the
// wireexhaustive analyzer). Deliberately untyped: it names a range
// boundary, not a frame type.
const responseBase = 64

// Batchable reports whether a request type may ride inside a Batch
// frame. The switch enumerates every request type so the wireexhaustive
// analyzer can prove a newly added request was deliberately classified:
// only the five per-transaction operations batch; the connection-scoped
// probes (Sync, Stats) and the envelopes themselves do not.
func Batchable(t MsgType) bool {
	switch t {
	case MsgBegin, MsgRead, MsgWrite, MsgCommit, MsgAbort:
		return true
	case MsgSync, MsgStats, MsgTagged, MsgBatch, MsgReplicaHello:
		// ReplicaHello flips the whole connection into feed mode; it is a
		// connection-scoped handshake, not a batchable operation.
		return false
	default:
		return false
	}
}

// replyable reports whether a response type may ride inside a reply
// envelope: any concrete response (including Error) except the reply
// envelopes themselves.
func replyable(t MsgType) bool {
	return t >= responseBase && t != MsgTaggedReply && t != MsgBatchReply
}

// decodeInner decodes one nested message of a kind admitted by allowed,
// setting r.err on failure. The inner payload is everything the inner
// decoder consumes; the caller's finish check catches trailing bytes.
// Field names passed to the cursor are constants (never what-derived
// concatenations): this path must stay allocation-free per frame.
func decodeInner(r *reader, what string, allowed func(MsgType) bool) Message {
	it := MsgType(r.u8("inner type"))
	if r.err != nil {
		return nil
	}
	if !allowed(it) {
		r.err = fmt.Errorf("wire: %v cannot be carried inside a %s envelope", it, what)
		return nil
	}
	inner, err := newMessage(it)
	if err != nil {
		r.err = err
		return nil
	}
	inner.decodePayload(r)
	if r.err != nil {
		Recycle(inner)
		return nil
	}
	return inner
}

// appendInner appends a nested message (type byte + payload) to dst.
func appendInner(dst []byte, m Message) []byte {
	dst = appendU8(dst, uint8(m.MsgType()))
	return m.appendPayload(dst)
}

// Tagged wraps one request with a correlation tag. The server echoes the
// tag on the matching TaggedReply, so a connection can carry multiple
// outstanding requests and the client can demultiplex responses.
type Tagged struct {
	Tag   uint32
	Inner Message
}

// MsgType implements Message.
func (*Tagged) MsgType() MsgType { return MsgTagged }

func (m *Tagged) appendPayload(dst []byte) []byte {
	dst = appendU32(dst, m.Tag)
	return appendInner(dst, m.Inner)
}

func (m *Tagged) decodePayload(r *reader) {
	m.Tag = r.u32("tag")
	m.Inner = decodeInner(r, "Tagged", Taggable)
}

// TaggedReply answers one Tagged request (or one op of a Batch), echoing
// its tag around any concrete response, including Error.
type TaggedReply struct {
	Tag   uint32
	Inner Message
}

// MsgType implements Message.
func (*TaggedReply) MsgType() MsgType { return MsgTaggedReply }

func (m *TaggedReply) appendPayload(dst []byte) []byte {
	dst = appendU32(dst, m.Tag)
	return appendInner(dst, m.Inner)
}

func (m *TaggedReply) decodePayload(r *reader) {
	m.Tag = r.u32("tag")
	m.Inner = decodeInner(r, "TaggedReply", replyable)
}

// BatchItem is one tagged operation inside a Batch or BatchReply frame.
type BatchItem struct {
	Tag uint32
	Msg Message
}

// Batch carries N tagged operations in one frame. The payload is
// CRC-guarded: the checksum covers the item section, so a corrupt batch
// is rejected whole before any op is dispatched. Each item is length-
// prefixed so a decoder can validate op boundaries independently of the
// inner decoders.
type Batch struct {
	Ops []BatchItem
}

// MsgType implements Message.
func (*Batch) MsgType() MsgType { return MsgBatch }

func (m *Batch) appendPayload(dst []byte) []byte { return appendItems(dst, m.Ops) }

func (m *Batch) decodePayload(r *reader) {
	m.Ops = decodeItems(r, m.Ops[:0], "Batch", Batchable)
}

// BatchReply carries the replies to a batch's inline ops, and is also
// the frame the server's response writer coalesces adjacent tagged
// replies (e.g. group-commit acks flushed together) into.
type BatchReply struct {
	Replies []BatchItem
}

// MsgType implements Message.
func (*BatchReply) MsgType() MsgType { return MsgBatchReply }

func (m *BatchReply) appendPayload(dst []byte) []byte { return appendItems(dst, m.Replies) }

func (m *BatchReply) decodePayload(r *reader) {
	m.Replies = decodeItems(r, m.Replies[:0], "BatchReply", replyable)
}

// appendItems encodes the shared batch-item section: a CRC32 (IEEE) over
// the rest of the payload, a count, then per item the tag, the inner
// type byte, a length prefix and the inner payload.
func appendItems(dst []byte, items []BatchItem) []byte {
	crcAt := len(dst)
	dst = appendU32(dst, 0) // checksum placeholder
	dst = appendU16(dst, uint16(len(items)))
	for i := range items {
		dst = appendU32(dst, items[i].Tag)
		dst = appendU8(dst, uint8(items[i].Msg.MsgType()))
		lenAt := len(dst)
		dst = appendU32(dst, 0) // length placeholder
		dst = items[i].Msg.appendPayload(dst)
		putU32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	putU32(dst[crcAt:], crc32.ChecksumIEEE(dst[crcAt+4:]))
	return dst
}

// decodeItems decodes the shared batch-item section into dst (reusing
// its capacity), verifying the checksum before touching any item.
func decodeItems(r *reader, dst []BatchItem, what string, allowed func(MsgType) bool) []BatchItem {
	sum := r.u32("batch checksum")
	if r.err != nil {
		return nil
	}
	if got := crc32.ChecksumIEEE(r.rest()); got != sum {
		r.err = fmt.Errorf("wire: %s payload checksum mismatch: frame carries %08x, computed %08x", what, sum, got)
		return nil
	}
	n := int(r.u16("batch op count"))
	for i := 0; i < n && r.err == nil; i++ {
		tag := r.u32("batch op tag")
		it := MsgType(r.u8("batch op type"))
		opLen := int(r.u32("batch op length"))
		if r.err != nil {
			break
		}
		if !allowed(it) {
			r.err = fmt.Errorf("wire: %v cannot be carried inside a %s frame", it, what)
			break
		}
		if r.off+opLen > len(r.b) {
			r.fail("batch op payload")
			break
		}
		inner, err := newMessage(it)
		if err != nil {
			r.err = err
			break
		}
		// Decode through the frame cursor itself, temporarily clamping
		// its view to this op's payload: a per-op sub-reader would escape
		// through the dynamic decodePayload call and cost one allocation
		// per op, breaking the 0-alloc steady state.
		full := r.b
		limit := r.off + opLen
		r.b = full[:limit]
		inner.decodePayload(r)
		trailing := r.err == nil && r.off != limit
		r.b = full
		if r.err != nil || trailing {
			Recycle(inner)
			if trailing {
				r.err = fmt.Errorf("wire: %s op %d (%v) payload has %d trailing bytes", what, i, it, limit-r.off)
			} else {
				r.err = fmt.Errorf("wire: %s op %d (%v): %w", what, i, it, r.err)
			}
			break
		}
		dst = append(dst, BatchItem{Tag: tag, Msg: inner})
	}
	if r.err != nil {
		recycleItems(dst)
		return nil
	}
	return dst
}

// recycleItems returns every item's message to its pool and zeroes the
// slice entries so a pooled wrapper does not pin dead messages.
func recycleItems(items []BatchItem) {
	for i := range items {
		if items[i].Msg != nil {
			Recycle(items[i].Msg)
		}
		items[i] = BatchItem{}
	}
}
