//go:build race

package wire

// raceEnabled reports whether the race detector is active. The detector
// makes sync.Pool drop items at random to widen interleavings, so
// alloc-count assertions that depend on pool hits are skipped under it.
const raceEnabled = true
