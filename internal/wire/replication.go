package wire

// Replication frames (DESIGN.md §13). A follower opens an ordinary
// client connection and sends ReplicaHello with the last LSN it has
// applied; the connection then becomes a one-way feed. The server
// answers with an optional bootstrap snapshot (chunked, since a full
// store image can exceed MaxPayload) followed by an unbounded stream of
// ReplicaRecords frames carrying raw WAL record frames — the follower
// decodes them with wal.DecodeFrames and applies them in LSN order.

// ReplicaHello requests the committed-write feed for every record with
// LSN greater than AfterLSN (zero means "from the beginning").
type ReplicaHello struct {
	AfterLSN uint64
}

// MsgType implements Message.
func (*ReplicaHello) MsgType() MsgType { return MsgReplicaHello }

func (m *ReplicaHello) appendPayload(dst []byte) []byte { return appendU64(dst, m.AfterLSN) }
func (m *ReplicaHello) decodePayload(r *reader)         { m.AfterLSN = r.u64("after lsn") }

// ReplicaSnap carries one chunk of the bootstrap snapshot image. LSN is
// the log position the full image covers (the follower resumes after
// it); Done marks the final chunk. Sent only when the requested resume
// position has been truncated away on the primary.
type ReplicaSnap struct {
	LSN   uint64
	Done  bool
	Chunk []byte
}

// MsgType implements Message.
func (*ReplicaSnap) MsgType() MsgType { return MsgReplicaSnap }

func (m *ReplicaSnap) appendPayload(dst []byte) []byte {
	dst = appendU64(dst, m.LSN)
	done := uint8(0)
	if m.Done {
		done = 1
	}
	dst = appendU8(dst, done)
	dst = appendU32(dst, uint32(len(m.Chunk)))
	return append(dst, m.Chunk...)
}

func (m *ReplicaSnap) decodePayload(r *reader) {
	m.LSN = r.u64("snapshot lsn")
	m.Done = r.u8("snapshot done") != 0
	n := int(r.u32("snapshot chunk length"))
	// Copied, not aliased: the image is assembled across many frames
	// while the connection buffer is reused underneath.
	m.Chunk = append(m.Chunk[:0], r.take(n, "snapshot chunk")...)
}

// ReplicaRecords carries a run of raw WAL record frames in strict LSN
// order. HeadLSN is the primary's log head when the run was emitted, so
// the follower can measure its staleness as head minus last applied.
type ReplicaRecords struct {
	HeadLSN uint64
	Frames  []byte
}

// MsgType implements Message.
func (*ReplicaRecords) MsgType() MsgType { return MsgReplicaRecords }

func (m *ReplicaRecords) appendPayload(dst []byte) []byte {
	dst = appendU64(dst, m.HeadLSN)
	dst = appendU32(dst, uint32(len(m.Frames)))
	return append(dst, m.Frames...)
}

func (m *ReplicaRecords) decodePayload(r *reader) {
	m.HeadLSN = r.u64("head lsn")
	n := int(r.u32("frames length"))
	m.Frames = append(m.Frames[:0], r.take(n, "frames")...)
}
