// Package wire implements the framed binary protocol between transaction
// clients and the transaction server.
//
// The prototype of the paper ran synchronous RPC over a LAN (§6); this
// package plays that role over TCP. Each message is one frame:
//
//	offset  size  field
//	0       2     magic 0xED 0x05
//	2       1     protocol version (2)
//	3       1     message type
//	4       4     payload length, big endian
//	8       n     payload
//
// The request set mirrors the five basic operations of the prototype —
// Begin, Read, Write, Commit, Abort — plus a clock-synchronization
// handshake (the virtual-clock correction factor of §6) and a statistics
// probe used by the measurement tools.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies epsilondb frames.
var Magic = [2]byte{0xED, 0x05}

// Version is the protocol version this package speaks. Version 2 added
// the latency histograms and live-transaction gauge to StatsOK.
const Version = 2

// MaxPayload bounds frame payloads; larger frames are rejected to protect
// the peer from corrupt length fields.
const MaxPayload = 1 << 20

// MsgType identifies the message carried by a frame.
type MsgType uint8

// Request message types. Tagged and Batch are the pipelining envelopes
// (see pipeline.go); the rest is the seed protocol's synchronous set.
const (
	MsgBegin MsgType = iota + 1
	MsgRead
	MsgWrite
	MsgCommit
	MsgAbort
	MsgSync
	MsgStats
	MsgTagged
	MsgBatch
	MsgReplicaHello
)

// Response message types.
const (
	MsgBeginOK MsgType = iota + 64
	MsgValue
	MsgOK
	MsgSyncOK
	MsgStatsOK
	MsgError
	MsgTaggedReply
	MsgBatchReply
	MsgReplicaSnap
	MsgReplicaRecords
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgBegin:
		return "Begin"
	case MsgRead:
		return "Read"
	case MsgWrite:
		return "Write"
	case MsgCommit:
		return "Commit"
	case MsgAbort:
		return "Abort"
	case MsgSync:
		return "Sync"
	case MsgStats:
		return "Stats"
	case MsgTagged:
		return "Tagged"
	case MsgBatch:
		return "Batch"
	case MsgReplicaHello:
		return "ReplicaHello"
	case MsgBeginOK:
		return "BeginOK"
	case MsgValue:
		return "Value"
	case MsgOK:
		return "OK"
	case MsgSyncOK:
		return "SyncOK"
	case MsgStatsOK:
		return "StatsOK"
	case MsgError:
		return "Error"
	case MsgTaggedReply:
		return "TaggedReply"
	case MsgBatchReply:
		return "BatchReply"
	case MsgReplicaSnap:
		return "ReplicaSnap"
	case MsgReplicaRecords:
		return "ReplicaRecords"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is one protocol message. Implementations append their payload
// encoding and decode from a payload slice.
type Message interface {
	// MsgType returns the frame type byte.
	MsgType() MsgType
	// appendPayload appends the message payload to dst.
	appendPayload(dst []byte) []byte
	// decodePayload parses the payload.
	decodePayload(src *reader)
}

// ErrUnknownMessage reports a frame whose type byte names no message in
// this protocol version. The frame's payload has already been consumed
// when it is returned, so the stream is still in sync: the receiver can
// report the tag to the peer before closing, or even skip the frame.
type ErrUnknownMessage struct {
	// Tag is the offending type byte.
	Tag MsgType
}

func (e *ErrUnknownMessage) Error() string {
	return fmt.Sprintf("wire: unknown message type %d", uint8(e.Tag))
}

// newMessage constructs the empty message for a frame type, drawing
// from the per-type pools (see pool.go). The switch enumerates every
// frame type so the wireexhaustive analyzer can anchor its decode check
// here; recycled structs are zeroed on Recycle, so a pooled message is
// indistinguishable from a fresh one.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgBegin, MsgRead, MsgWrite, MsgCommit, MsgAbort, MsgSync, MsgStats,
		MsgTagged, MsgBatch, MsgReplicaHello,
		MsgBeginOK, MsgValue, MsgOK, MsgSyncOK, MsgStatsOK, MsgError,
		MsgTaggedReply, MsgBatchReply, MsgReplicaSnap, MsgReplicaRecords:
		return pools[t].Get().(Message), nil
	default:
		return nil, &ErrUnknownMessage{Tag: t}
	}
}

// reader is a cursor over a payload with sticky error handling.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload reading %s at offset %d", what, r.off)
	}
}

func (r *reader) u8(what string) uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64(what string) int64 { return int64(r.u64(what)) }

// rest returns the not-yet-consumed remainder of the payload without
// advancing the cursor (used for checksums over nested sections).
func (r *reader) rest() []byte {
	if r.err != nil || r.off > len(r.b) {
		return nil
	}
	return r.b[r.off:]
}

// take consumes n raw bytes and returns them (aliasing the payload
// buffer: callers must finish with the slice before the next frame).
func (r *reader) take(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) str(what string) string {
	n := int(r.u16(what))
	if r.err != nil || r.off+n > len(r.b) {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// leftover reports trailing bytes, which indicate a peer bug.
func (r *reader) finish(t MsgType) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %v payload has %d trailing bytes", t, len(r.b)-r.off)
	}
	return nil
}

func appendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func putU32(dst []byte, v uint32)           { binary.BigEndian.PutUint32(dst, v) }
func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }

func appendStr(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}
