package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// pipeConns returns two framers connected back to back.
func pipeConns() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// roundTrip sends m through an in-memory buffer and decodes it back.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMessage(m); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := c.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&Begin{Kind: core.Query, Timestamp: tsgen.Make(42, 3), Spec: core.BoundSpec{
			Transaction: 100_000,
			Groups:      map[string]core.Distance{"company": 4000, "personal": 3000},
			Objects:     map[core.ObjectID]core.Distance{7: 200},
		}},
		&Begin{Kind: core.Update, Timestamp: tsgen.Make(1, 0), Spec: core.BoundSpec{Transaction: 0}},
		&Read{Txn: 9, Object: 1863},
		&Write{Txn: 9, Object: 1078, Delta: false, Value: 5230},
		&Write{Txn: 9, Object: 1727, Delta: true, Value: -420},
		&Commit{Txn: 9},
		&Abort{Txn: 12},
		&Sync{ClientTicks: 123456789},
		&Stats{},
		&BeginOK{Txn: 77},
		&Value{Value: -99},
		&OK{},
		&SyncOK{ServerTicks: 987654321},
		&StatsOK{Snapshot: metrics.Snapshot{Commits: 5, AbortLateRead: 2, WastedOps: 7}, ProperMisses: 3},
		&Error{Code: CodeAbort, Reason: metrics.AbortImportLimit, Message: "limit exceeded"},
		&Error{Code: CodeGeneric, Message: "unknown txn"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip of %v:\n got %#v\nwant %#v", m.MsgType(), got, m)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, m := range []Message{&Begin{}, &Read{}, &Write{}, &Commit{}, &Abort{}, &Sync{}, &Stats{},
		&BeginOK{}, &Value{}, &OK{}, &SyncOK{}, &StatsOK{}, &Error{}} {
		if s := m.MsgType().String(); strings.HasPrefix(s, "MsgType(") {
			t.Errorf("missing name for %d", m.MsgType())
		}
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Error("unknown type string wrong")
	}
}

func TestErrorImplementsError(t *testing.T) {
	e := &Error{Code: CodeAbort, Reason: metrics.AbortLateRead, Message: "x"}
	if !strings.Contains(e.Error(), "late-read") {
		t.Errorf("Error() = %q", e.Error())
	}
	g := &Error{Code: CodeGeneric, Message: "boom"}
	if !strings.Contains(g.Error(), "boom") {
		t.Errorf("Error() = %q", g.Error())
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x00, Version, byte(MsgOK), 0, 0, 0, 0})
	_, err := NewConn(&buf).ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("bad magic not rejected: %v", err)
	}
}

func TestBadVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{Magic[0], Magic[1], 99, byte(MsgOK), 0, 0, 0, 0})
	_, err := NewConn(&buf).ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version not rejected: %v", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{Magic[0], Magic[1], Version, 250, 0, 0, 0, 0})
	_, err := NewConn(&buf).ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "unknown message type") {
		t.Errorf("unknown type not rejected: %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{Magic[0], Magic[1], Version, byte(MsgOK), 0xFF, 0xFF, 0xFF, 0xFF}
	buf.Write(hdr)
	_, err := NewConn(&buf).ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized payload not rejected: %v", err)
	}
}

func TestTruncatedPayloadRejected(t *testing.T) {
	var full bytes.Buffer
	c := NewConn(&full)
	if err := c.WriteMessage(&Read{Txn: 1, Object: 2}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	truncated := bytes.NewBuffer(raw[:len(raw)-2])
	_, err := NewConn(truncated).ReadMessage()
	if err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// An OK frame that claims a 3-byte payload.
	var buf bytes.Buffer
	buf.Write([]byte{Magic[0], Magic[1], Version, byte(MsgOK), 0, 0, 0, 3, 1, 2, 3})
	_, err := NewConn(&buf).ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing bytes not rejected: %v", err)
	}
}

func TestCleanEOFBetweenFrames(t *testing.T) {
	var buf bytes.Buffer
	_, err := NewConn(&buf).ReadMessage()
	if err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

func TestCallOverPipe(t *testing.T) {
	client, server := pipeConns()
	defer client.Close()
	defer server.Close()
	go func() {
		req, err := server.ReadMessage()
		if err != nil {
			return
		}
		if r, ok := req.(*Read); ok && r.Object == 5 {
			_ = server.WriteMessage(&Value{Value: 500})
		} else {
			_ = server.WriteMessage(&Error{Code: CodeGeneric, Message: "bad request"})
		}
	}()
	resp, err := client.Call(&Read{Txn: 1, Object: 5})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := resp.(*Value); !ok || v.Value != 500 {
		t.Errorf("resp = %#v", resp)
	}
}

func TestCallSurfacesErrorResponses(t *testing.T) {
	client, server := pipeConns()
	defer client.Close()
	defer server.Close()
	go func() {
		if _, err := server.ReadMessage(); err != nil {
			return
		}
		_ = server.WriteMessage(&Error{Code: CodeAbort, Reason: metrics.AbortExportLimit, Message: "tel"})
	}()
	_, err := client.Call(&Commit{Txn: 1})
	we, ok := err.(*Error)
	if !ok {
		t.Fatalf("err = %v, want *wire.Error", err)
	}
	if we.Code != CodeAbort || we.Reason != metrics.AbortExportLimit {
		t.Errorf("error = %#v", we)
	}
}

func TestBeginRoundTripProperty(t *testing.T) {
	prop := func(kind bool, ticks int64, site uint16, limit int64, groupLimit int64, objID uint32, objLimit int64) bool {
		if ticks < 0 {
			ticks = -ticks
		}
		ticks &= (1 << 40) - 1
		k := core.Query
		if kind {
			k = core.Update
		}
		m := &Begin{
			Kind:      k,
			Timestamp: tsgen.Make(ticks, int(site)),
			Spec: core.BoundSpec{
				Transaction: limit,
				Groups:      map[string]core.Distance{"g": groupLimit},
				Objects:     map[core.ObjectID]core.Distance{core.ObjectID(objID): objLimit},
			},
		}
		var buf bytes.Buffer
		c := NewConn(&buf)
		if err := c.WriteMessage(m); err != nil {
			return false
		}
		got, err := c.ReadMessage()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	prop := func(v int64) bool {
		var buf bytes.Buffer
		c := NewConn(&buf)
		if err := c.WriteMessage(&Value{Value: v}); err != nil {
			return false
		}
		got, err := c.ReadMessage()
		if err != nil {
			return false
		}
		vv, ok := got.(*Value)
		return ok && vv.Value == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
