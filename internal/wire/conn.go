package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Conn frames messages over a byte stream. The read and write sides keep
// disjoint state (br/hdr/rbuf/rdr versus bw/buf), so one reader goroutine
// and one writer goroutine may use a Conn concurrently — that split is
// what the pipelined client's demultiplexing core and the server's
// response writer rely on. Neither side tolerates two concurrent users:
// at most one goroutine may read and at most one may write at a time.
type Conn struct {
	rw  io.ReadWriter
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
	// hdr and rbuf are the reused receive buffers: the frame header and
	// the payload buffer ReadMessage decodes from, mirroring buf on the
	// write side. Both payload buffers are capped at maxRetainedPayload;
	// oversized frames use transient allocations instead of growing the
	// retained buffers. Decoding copies everything it retains (strings,
	// map entries), so reusing the backing array across messages is safe.
	hdr  [8]byte
	rbuf []byte
	// rdr is the reused payload cursor. It lives on the Conn because the
	// decodePayload call is dynamic dispatch, so a stack-local reader
	// would escape and cost one allocation per frame.
	rdr reader
}

// maxRetainedPayload caps how much buffer memory a Conn keeps between
// frames. Frames up to this size reuse the retained buffers; larger
// frames (possible up to MaxPayload) borrow a transient buffer that is
// never retained, so one oversized Stats frame does not pin a megabyte
// on every idle connection for its lifetime.
const maxRetainedPayload = 64 << 10

// NewConn wraps a byte stream (usually a net.Conn) in a message framer.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReader(rw),
		bw: bufio.NewWriter(rw),
	}
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if closer, ok := c.rw.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// RemoteAddr reports the peer address when the stream is a net.Conn.
func (c *Conn) RemoteAddr() string {
	if nc, ok := c.rw.(net.Conn); ok {
		return nc.RemoteAddr().String()
	}
	return "pipe"
}

// readDeadliner and writeDeadliner are the deadline slices of net.Conn;
// asserting them separately keeps in-process pipes (io.Pipe wrappers,
// test fakes) usable without deadlines.
type readDeadliner interface{ SetReadDeadline(t time.Time) error }
type writeDeadliner interface{ SetWriteDeadline(t time.Time) error }

// SetReadDeadline bounds blocking reads on the underlying stream. It
// reports false when the stream has no deadline support (then callers
// must bound waits some other way, or accept unbounded blocking).
func (c *Conn) SetReadDeadline(t time.Time) bool {
	if d, ok := c.rw.(readDeadliner); ok {
		return d.SetReadDeadline(t) == nil
	}
	return false
}

// SetWriteDeadline bounds blocking writes on the underlying stream,
// reporting false when unsupported.
func (c *Conn) SetWriteDeadline(t time.Time) bool {
	if d, ok := c.rw.(writeDeadliner); ok {
		return d.SetWriteDeadline(t) == nil
	}
	return false
}

// SetDeadline bounds both directions at once, reporting false when the
// stream supports neither.
func (c *Conn) SetDeadline(t time.Time) bool {
	r := c.SetReadDeadline(t)
	w := c.SetWriteDeadline(t)
	return r || w
}

// WriteMessage frames, sends and flushes one message.
func (c *Conn) WriteMessage(m Message) error {
	if err := c.WriteMessageNoFlush(m); err != nil {
		return err
	}
	return c.bw.Flush()
}

// WriteMessageNoFlush frames one message into the write buffer without
// flushing it to the stream. Pipelined senders queue several frames and
// Flush once, coalescing small writes into one syscall.
func (c *Conn) WriteMessageNoFlush(m Message) error {
	c.buf = c.buf[:0]
	c.buf = append(c.buf, Magic[0], Magic[1], Version, byte(m.MsgType()))
	c.buf = append(c.buf, 0, 0, 0, 0) // length placeholder
	c.buf = m.appendPayload(c.buf)
	payloadLen := len(c.buf) - 8
	if payloadLen > MaxPayload {
		return fmt.Errorf("wire: %v payload of %d bytes exceeds limit", m.MsgType(), payloadLen)
	}
	binary.BigEndian.PutUint32(c.buf[4:8], uint32(payloadLen))
	_, err := c.bw.Write(c.buf)
	if cap(c.buf) > maxRetainedPayload+8 {
		c.buf = nil
	}
	if err != nil {
		return fmt.Errorf("wire: write %v: %w", m.MsgType(), err)
	}
	return nil
}

// Flush pushes buffered frames to the stream.
func (c *Conn) Flush() error { return c.bw.Flush() }

// ReadMessage receives and decodes one message. io.EOF is returned
// unwrapped when the peer closed the connection cleanly between frames.
func (c *Conn) ReadMessage() (Message, error) {
	hdr := c.hdr[:]
	if _, err := io.ReadFull(c.br, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if _, err := io.ReadFull(c.br, hdr[1:]); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if hdr[0] != Magic[0] || hdr[1] != Magic[1] {
		return nil, fmt.Errorf("wire: bad magic %02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("wire: unsupported protocol version %d", hdr[2])
	}
	t := MsgType(hdr[3])
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return nil, fmt.Errorf("wire: %v payload of %d bytes exceeds limit", t, n)
	}
	var payload []byte
	if n <= maxRetainedPayload {
		if uint32(cap(c.rbuf)) < n {
			c.rbuf = make([]byte, n)
		}
		payload = c.rbuf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, fmt.Errorf("wire: read %v payload: %w", t, err)
	}
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	c.rdr = reader{b: payload}
	m.decodePayload(&c.rdr)
	if err := c.rdr.finish(t); err != nil {
		Recycle(m)
		return nil, err
	}
	return m, nil
}

// Call sends a request and reads the response, converting Error responses
// into Go errors.
func (c *Conn) Call(req Message) (Message, error) {
	if err := c.WriteMessage(req); err != nil {
		return nil, err
	}
	resp, err := c.ReadMessage()
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*Error); ok {
		return nil, e
	}
	return resp, nil
}
