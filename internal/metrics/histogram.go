package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histograms use log-linear bucketing (the HDR scheme): each
// power-of-two range ("octave") is split into 2^histSubBits equal-width
// sub-buckets, giving a worst-case relative error of 1/2^histSubBits
// (12.5%) — ample for p50/p95/p99 — with a small fixed bucket array and
// no allocation on the record path. Values are nanoseconds; the array
// covers the full non-negative int64 range, so no observation is ever
// dropped or clamped.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits // 8

	// NumHistBuckets spans values 0..MaxInt64: the largest exponent is
	// 62, whose octave starts at bucket (62-histSubBits+1)*histSubBuckets.
	NumHistBuckets = (62-histSubBits+1)*histSubBuckets + histSubBuckets
)

// histBucket maps a non-negative value to its bucket index. Values below
// histSubBuckets get exact unit-width buckets; above, the top histSubBits
// bits after the leading one select the sub-bucket within the octave.
func histBucket(v int64) int {
	if v < histSubBuckets {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2(v)), >= histSubBits
	shift := uint(exp - histSubBits)
	sub := int(uint64(v)>>shift) - histSubBuckets // 0..histSubBuckets-1
	return (exp-histSubBits+1)*histSubBuckets + sub
}

// BucketUpper returns the largest value mapped to bucket i, the value
// quantile estimation reports (a conservative upper bound).
func BucketUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	g := i >> histSubBits // octave group, >= 1
	sub := i & (histSubBuckets - 1)
	return (int64(histSubBuckets+sub+1) << uint(g-1)) - 1
}

// Histogram is a fixed-size concurrent latency histogram. The zero value
// is ready to use; recording is a single atomic increment plus an atomic
// add, with no allocation and no locks. A nil *Histogram drops updates,
// mirroring the nil-Collector convention.
type Histogram struct {
	counts [NumHistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value (negative values count as zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot copies the histogram's current state. Concurrent observers may
// land between bucket and total reads; totals are reconciled from the
// buckets so the snapshot is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the unit the
// wire protocol ships and the experiment harness differences.
type HistogramSnapshot struct {
	Counts [NumHistBuckets]int64
	Count  int64
	Sum    int64
}

// Sub returns the bucket-wise difference s − t, confining a measurement
// to an interval.
func (s HistogramSnapshot) Sub(t HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] -= t.Counts[i]
	}
	out.Count -= t.Count
	out.Sum -= t.Sum
	return out
}

// Merge returns the bucket-wise sum s + t, combining histograms from
// several sources (e.g. the read and write paths) into one distribution.
func (s HistogramSnapshot) Merge(t HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] += t.Counts[i]
	}
	out.Count += t.Count
	out.Sum += t.Sum
	return out
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) in the
// recorded unit (nanoseconds for durations). An empty histogram yields 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation we need to cover.
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumHistBuckets - 1)
}

// Mean returns the exact arithmetic mean of the recorded values.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// LatencyKind names the engine paths whose latency is recorded.
type LatencyKind uint8

const (
	// LatRead is a successful read operation, entry to return.
	LatRead LatencyKind = iota
	// LatWrite is a successful write operation, entry to return.
	LatWrite
	// LatCommit is a commit, entry to return.
	LatCommit
	// LatWait is one strict-ordering wait, block to wake.
	LatWait
	// LatFsync is one WAL group-commit flush: write plus fsync of the
	// pending batch, observed by the committer goroutine.
	LatFsync

	// NumLatencyKinds sizes per-kind arrays. The wire encoding length-
	// prefixes the latency set, so appending kinds stays compatible.
	NumLatencyKinds
)

// String implements fmt.Stringer.
func (k LatencyKind) String() string {
	switch k {
	case LatRead:
		return "read"
	case LatWrite:
		return "write"
	case LatCommit:
		return "commit"
	case LatWait:
		return "wait"
	case LatFsync:
		return "fsync"
	default:
		return fmt.Sprintf("latency(%d)", uint8(k))
	}
}

// LatencySet is one snapshot per engine path, indexed by LatencyKind.
type LatencySet [NumLatencyKinds]HistogramSnapshot

// Sub differences two sets kind-wise.
func (s LatencySet) Sub(t LatencySet) LatencySet {
	var out LatencySet
	for i := range s {
		out[i] = s[i].Sub(t[i])
	}
	return out
}

// Ops merges the read and write histograms: the per-operation latency
// distribution the bench reports.
func (s LatencySet) Ops() HistogramSnapshot { return s[LatRead].Merge(s[LatWrite]) }
