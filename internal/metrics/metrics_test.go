package metrics

import (
	"sync"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Begin()
	c.Commit()
	c.Abort(AbortLateRead, 5)
	c.ReadExecuted(true)
	c.WriteExecuted(false)
	c.Waited()
	c.DirtySourceAborted()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil collector snapshot = %+v", s)
	}
}

func TestCountersAndDerivedMetrics(t *testing.T) {
	c := &Collector{}
	c.Begin()
	c.Begin()
	c.Commit()
	c.Abort(AbortLateRead, 3)
	c.Abort(AbortImportLimit, 2)
	c.ReadExecuted(true)
	c.ReadExecuted(false)
	c.ReadExecuted(false)
	c.WriteExecuted(true)
	c.Waited()
	c.DirtySourceAborted()

	s := c.Snapshot()
	if s.Begins != 2 || s.Commits != 1 {
		t.Errorf("begins=%d commits=%d", s.Begins, s.Commits)
	}
	if s.Aborts() != 2 {
		t.Errorf("Aborts() = %d, want 2", s.Aborts())
	}
	if s.WastedOps != 5 {
		t.Errorf("WastedOps = %d, want 5", s.WastedOps)
	}
	if s.TotalOps() != 4 {
		t.Errorf("TotalOps = %d, want 4", s.TotalOps())
	}
	if s.InconsistentOps() != 2 {
		t.Errorf("InconsistentOps = %d, want 2", s.InconsistentOps())
	}
	if s.OpsPerCommit() != 4 {
		t.Errorf("OpsPerCommit = %f, want 4", s.OpsPerCommit())
	}
	if s.Waits != 1 || s.DirtySourceAborted != 1 {
		t.Errorf("waits=%d dirty=%d", s.Waits, s.DirtySourceAborted)
	}
}

func TestAllAbortReasonsRouted(t *testing.T) {
	c := &Collector{}
	reasons := []AbortReason{
		AbortLateRead, AbortLateWrite, AbortImportLimit, AbortExportLimit,
		AbortWaitTimeout, AbortMissingObject, AbortExplicit, AbortDeadlock, AbortOther,
	}
	for _, r := range reasons {
		c.Abort(r, 0)
		if r.String() == "" {
			t.Errorf("empty string for reason %d", r)
		}
	}
	c.Abort(AbortReason(200), 0) // unknown → other
	s := c.Snapshot()
	if s.Aborts() != int64(len(reasons)+1) {
		t.Errorf("Aborts() = %d, want %d", s.Aborts(), len(reasons)+1)
	}
	if s.AbortOther != 2 {
		t.Errorf("AbortOther = %d, want 2", s.AbortOther)
	}
	if AbortReason(200).String() != "other" {
		t.Error("unknown reason string")
	}
}

func TestOpsPerCommitZeroCommits(t *testing.T) {
	c := &Collector{}
	c.ReadExecuted(false)
	if got := c.Snapshot().OpsPerCommit(); got != 0 {
		t.Errorf("OpsPerCommit with zero commits = %f", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	c := &Collector{}
	c.Commit()
	c.ReadExecuted(true)
	before := c.Snapshot()
	c.Commit()
	c.Commit()
	c.Abort(AbortLateWrite, 1)
	c.WriteExecuted(true)
	delta := c.Snapshot().Sub(before)
	if delta.Commits != 2 {
		t.Errorf("delta commits = %d, want 2", delta.Commits)
	}
	if delta.Aborts() != 1 || delta.WastedOps != 1 {
		t.Errorf("delta aborts=%d wasted=%d", delta.Aborts(), delta.WastedOps)
	}
	if delta.ReadsExecuted != 0 || delta.WritesExecuted != 1 {
		t.Errorf("delta reads=%d writes=%d", delta.ReadsExecuted, delta.WritesExecuted)
	}
	if delta.InconsistentOps() != 1 {
		t.Errorf("delta inconsistent = %d", delta.InconsistentOps())
	}
}

func TestCollectorConcurrentUpdates(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Commit()
				c.ReadExecuted(j%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Commits != 8000 || s.ReadsExecuted != 8000 || s.InconsistentReads != 4000 {
		t.Errorf("concurrent counters wrong: %+v", s)
	}
}
