package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear bucketing: unit-width buckets
// below histSubBuckets, contiguous octave/sub-bucket mapping above, and
// BucketUpper as the exact inverse upper bound.
func TestBucketBoundaries(t *testing.T) {
	// Small values get exact buckets.
	for v := int64(0); v < histSubBuckets; v++ {
		if got := histBucket(v); got != int(v) {
			t.Errorf("histBucket(%d) = %d, want %d", v, got, v)
		}
		if got := BucketUpper(int(v)); got != v {
			t.Errorf("BucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	// Negative values clamp to bucket 0.
	if got := histBucket(-5); got != 0 {
		t.Errorf("histBucket(-5) = %d, want 0", got)
	}
	// Buckets are contiguous and monotone across octave boundaries.
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64,
		1000, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		b := histBucket(v)
		if b < prev {
			t.Errorf("histBucket(%d) = %d < previous bucket %d", v, b, prev)
		}
		prev = b
		if b < 0 || b >= NumHistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range [0,%d)", v, b, NumHistBuckets)
		}
		// Every value is <= its bucket's upper bound, and above the
		// previous bucket's upper bound.
		if up := BucketUpper(b); v > up {
			t.Errorf("value %d > BucketUpper(%d) = %d", v, b, up)
		}
		if b > 0 {
			if low := BucketUpper(b-1) + 1; v < low {
				t.Errorf("value %d < lower bound %d of bucket %d", v, low, b)
			}
		}
	}
	// The relative error bound: the bucket width never exceeds
	// 1/histSubBuckets of the bucket's lower bound (log-linear property).
	for b := histSubBuckets; b < NumHistBuckets-1; b++ {
		low := BucketUpper(b-1) + 1
		width := BucketUpper(b) - low + 1
		if width > low/histSubBuckets+1 {
			t.Fatalf("bucket %d width %d exceeds %d/8+1", b, width, low)
		}
	}
	// The top bucket covers MaxInt64 exactly.
	if got := BucketUpper(NumHistBuckets - 1); got != math.MaxInt64 {
		t.Errorf("top BucketUpper = %d, want MaxInt64", got)
	}
	if got := histBucket(math.MaxInt64); got != NumHistBuckets-1 {
		t.Errorf("histBucket(MaxInt64) = %d, want %d", got, NumHistBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations 1..100: p50 covers 50, p99 covers 99.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 50.5 {
		t.Errorf("Mean = %v, want 50.5", m)
	}
	for _, tc := range []struct {
		q    float64
		want int64 // value the quantile must cover
	}{{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}} {
		got := s.Quantile(tc.q)
		if got < tc.want {
			t.Errorf("Quantile(%v) = %d, below %d", tc.q, got, tc.want)
		}
		// Log-linear error bound: the reported upper bound is within
		// 12.5% + 1 of the true value.
		if max := tc.want + tc.want/histSubBuckets + 1; got > max {
			t.Errorf("Quantile(%v) = %d, above error bound %d", tc.q, got, max)
		}
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %d, want 0", q)
	}
}

func TestHistogramSubAndMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(0); v < 50; v++ {
		a.Observe(v)
	}
	mid := a.Snapshot()
	for v := int64(50); v < 100; v++ {
		a.Observe(v)
	}
	full := a.Snapshot()

	// Sub isolates the second half.
	second := full.Sub(mid)
	if second.Count != 50 {
		t.Errorf("Sub count = %d, want 50", second.Count)
	}
	if second.Quantile(0) < 50 {
		t.Errorf("Sub min quantile = %d, want >= 50", second.Quantile(0))
	}

	// Merge of two disjoint histograms equals observing everything once.
	for v := int64(50); v < 100; v++ {
		b.Observe(v)
	}
	merged := mid.Merge(b.Snapshot())
	if merged != full {
		t.Error("Merge(first, second) != full histogram")
	}
}

func TestNilHistogramAndCollectorLatency(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}

	var c *Collector
	c.ObserveLatency(LatRead, time.Millisecond)
	c.AddDirtySourceAborted(3)
	if s := c.LatencySnapshot(); s[LatRead].Count != 0 {
		t.Error("nil collector recorded latency")
	}
}

func TestCollectorLatencySet(t *testing.T) {
	c := &Collector{}
	c.ObserveLatency(LatRead, 100*time.Microsecond)
	c.ObserveLatency(LatRead, 200*time.Microsecond)
	c.ObserveLatency(LatWrite, 300*time.Microsecond)
	c.ObserveLatency(LatCommit, time.Millisecond)
	c.ObserveLatency(LatWait, 2*time.Millisecond)
	c.ObserveLatency(NumLatencyKinds, time.Hour) // out of range: dropped

	s := c.LatencySnapshot()
	if s[LatRead].Count != 2 || s[LatWrite].Count != 1 ||
		s[LatCommit].Count != 1 || s[LatWait].Count != 1 {
		t.Fatalf("per-kind counts = %d/%d/%d/%d",
			s[LatRead].Count, s[LatWrite].Count, s[LatCommit].Count, s[LatWait].Count)
	}
	ops := s.Ops()
	if ops.Count != 3 {
		t.Errorf("Ops count = %d, want 3", ops.Count)
	}
	if p := ops.Quantile(1); p < int64(300*time.Microsecond) {
		t.Errorf("Ops p100 = %d, want >= 300us", p)
	}
	// Sub on the set zeroes everything.
	if d := s.Sub(s); d[LatRead].Count != 0 || d.Ops().Count != 0 {
		t.Error("LatencySet.Sub(self) not zero")
	}
}

func TestAddDirtySourceAborted(t *testing.T) {
	c := &Collector{}
	c.AddDirtySourceAborted(4)
	c.AddDirtySourceAborted(0)
	c.AddDirtySourceAborted(-2)
	c.DirtySourceAborted()
	if got := c.Snapshot().DirtySourceAborted; got != 5 {
		t.Errorf("DirtySourceAborted = %d, want 5", got)
	}
}

func TestAbortBreakdown(t *testing.T) {
	c := &Collector{}
	c.Abort(AbortLateRead, 0)
	c.Abort(AbortLateRead, 0)
	c.Abort(AbortExplicit, 0)
	got := c.Snapshot().AbortBreakdown()
	if len(got) != 2 || got["late-read"] != 2 || got["explicit"] != 1 {
		t.Errorf("AbortBreakdown = %v", got)
	}
}

// TestHistogramConcurrent exercises the record path under the race
// detector.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}
