// Package metrics collects the performance counters the paper's
// evaluation reports: commits, aborts (retries) broken down by cause,
// executed read and write operations, successful inconsistent operations,
// wasted operations from aborted attempts, and waits (§7–8).
//
// Counters are updated with atomic increments from many goroutines and
// read via consistent-enough snapshots; the experiment harness works with
// snapshot deltas over timed intervals to derive throughput.
package metrics

import (
	"sync/atomic"
	"time"
)

// Collector accumulates counters for one engine instance. The zero value
// is ready to use. A nil *Collector is also valid and drops all updates,
// so components can make metrics optional without branching.
type Collector struct {
	commits atomic.Int64
	begins  atomic.Int64

	abortLateRead      atomic.Int64
	abortLateWrite     atomic.Int64
	abortImportLimit   atomic.Int64
	abortExportLimit   atomic.Int64
	abortWaitTimeout   atomic.Int64
	abortMissingObject atomic.Int64
	abortExplicit      atomic.Int64
	abortOther         atomic.Int64
	abortDeadlock      atomic.Int64

	readsExecuted  atomic.Int64
	writesExecuted atomic.Int64

	inconsistentReads  atomic.Int64
	inconsistentWrites atomic.Int64

	wastedOps atomic.Int64
	waits     atomic.Int64

	dirtySourceAborted atomic.Int64

	lat [NumLatencyKinds]Histogram

	// walBatch is the distribution of group-commit batch sizes: how many
	// records each WAL fsync covered.
	walBatch Histogram
}

// AbortReason classifies why the engine aborted a transaction attempt.
type AbortReason uint8

const (
	// AbortLateRead is a read arriving after a conflicting newer write
	// that ESR could not admit.
	AbortLateRead AbortReason = iota
	// AbortLateWrite is a write arriving after a conflicting newer read
	// or write.
	AbortLateWrite
	// AbortImportLimit is a violated import bound (OIL, group, or TIL).
	AbortImportLimit
	// AbortExportLimit is a violated export bound (OEL, group, or TEL).
	AbortExportLimit
	// AbortWaitTimeout is a strict-ordering wait that exceeded the
	// engine's safety-valve timeout.
	AbortWaitTimeout
	// AbortMissingObject is an operation on an object that does not exist.
	AbortMissingObject
	// AbortExplicit is a client-requested abort.
	AbortExplicit
	// AbortDeadlock is a deadlock-victim abort (used by the 2PL baseline;
	// timestamp ordering never deadlocks).
	AbortDeadlock
	// AbortOther covers internal errors.
	AbortOther

	numAbortReasons
)

// String implements fmt.Stringer.
func (r AbortReason) String() string {
	switch r {
	case AbortLateRead:
		return "late-read"
	case AbortLateWrite:
		return "late-write"
	case AbortImportLimit:
		return "import-limit"
	case AbortExportLimit:
		return "export-limit"
	case AbortWaitTimeout:
		return "wait-timeout"
	case AbortMissingObject:
		return "missing-object"
	case AbortExplicit:
		return "explicit"
	case AbortDeadlock:
		return "deadlock"
	default:
		return "other"
	}
}

// Begin records a transaction attempt starting.
func (c *Collector) Begin() {
	if c != nil {
		c.begins.Add(1)
	}
}

// Commit records a transaction attempt committing.
func (c *Collector) Commit() {
	if c != nil {
		c.commits.Add(1)
	}
}

// Abort records a transaction attempt aborting for the given reason,
// together with the number of operations the attempt had already
// executed, which become wasted work (Fig 10's "useless operations").
func (c *Collector) Abort(reason AbortReason, opsExecuted int64) {
	if c == nil {
		return
	}
	switch reason {
	case AbortLateRead:
		c.abortLateRead.Add(1)
	case AbortLateWrite:
		c.abortLateWrite.Add(1)
	case AbortImportLimit:
		c.abortImportLimit.Add(1)
	case AbortExportLimit:
		c.abortExportLimit.Add(1)
	case AbortWaitTimeout:
		c.abortWaitTimeout.Add(1)
	case AbortMissingObject:
		c.abortMissingObject.Add(1)
	case AbortExplicit:
		c.abortExplicit.Add(1)
	case AbortDeadlock:
		c.abortDeadlock.Add(1)
	default:
		c.abortOther.Add(1)
	}
	c.wastedOps.Add(opsExecuted)
}

// ReadExecuted records one successful read; inconsistent says whether it
// went through an ESR relaxation viewing nonzero inconsistency.
func (c *Collector) ReadExecuted(inconsistent bool) {
	if c == nil {
		return
	}
	c.readsExecuted.Add(1)
	if inconsistent {
		c.inconsistentReads.Add(1)
	}
}

// WriteExecuted records one successful write; inconsistent says whether
// it exported nonzero inconsistency through ESR case 3.
func (c *Collector) WriteExecuted(inconsistent bool) {
	if c == nil {
		return
	}
	c.writesExecuted.Add(1)
	if inconsistent {
		c.inconsistentWrites.Add(1)
	}
}

// Waited records one strict-ordering wait.
func (c *Collector) Waited() {
	if c != nil {
		c.waits.Add(1)
	}
}

// DirtySourceAborted records that an update whose uncommitted value had
// been read by a query later aborted — the §5.1 corner the paper chooses
// not to guard against; we count it for observability.
func (c *Collector) DirtySourceAborted() { c.AddDirtySourceAborted(1) }

// AddDirtySourceAborted records n dirty-source-abort occurrences at once
// (an aborting update may have had several query readers).
func (c *Collector) AddDirtySourceAborted(n int64) {
	if c != nil && n > 0 {
		c.dirtySourceAborted.Add(n)
	}
}

// ObserveLatency records one duration on the given engine path.
func (c *Collector) ObserveLatency(k LatencyKind, d time.Duration) {
	if c != nil && k < NumLatencyKinds {
		c.lat[k].ObserveDuration(d)
	}
}

// ObserveWALBatch records the number of records one WAL fsync covered —
// the group-commit batch size.
func (c *Collector) ObserveWALBatch(records int64) {
	if c != nil {
		c.walBatch.Observe(records)
	}
}

// WALBatchSnapshot copies the group-commit batch-size histogram. A nil
// Collector snapshots as empty.
func (c *Collector) WALBatchSnapshot() HistogramSnapshot {
	if c == nil {
		return HistogramSnapshot{}
	}
	return c.walBatch.Snapshot()
}

// LatencySnapshot copies the per-path latency histograms. A nil Collector
// snapshots as empty.
func (c *Collector) LatencySnapshot() LatencySet {
	var s LatencySet
	if c == nil {
		return s
	}
	for i := range c.lat {
		s[i] = c.lat[i].Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of all counters.
type Snapshot struct {
	Begins  int64
	Commits int64

	AbortLateRead      int64
	AbortLateWrite     int64
	AbortImportLimit   int64
	AbortExportLimit   int64
	AbortWaitTimeout   int64
	AbortMissingObject int64
	AbortExplicit      int64
	AbortDeadlock      int64
	AbortOther         int64

	ReadsExecuted  int64
	WritesExecuted int64

	InconsistentReads  int64
	InconsistentWrites int64

	WastedOps int64
	Waits     int64

	DirtySourceAborted int64
}

// Snapshot returns a copy of the current counter values. A nil Collector
// snapshots as all zeros.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Begins:             c.begins.Load(),
		Commits:            c.commits.Load(),
		AbortLateRead:      c.abortLateRead.Load(),
		AbortLateWrite:     c.abortLateWrite.Load(),
		AbortImportLimit:   c.abortImportLimit.Load(),
		AbortExportLimit:   c.abortExportLimit.Load(),
		AbortWaitTimeout:   c.abortWaitTimeout.Load(),
		AbortMissingObject: c.abortMissingObject.Load(),
		AbortExplicit:      c.abortExplicit.Load(),
		AbortDeadlock:      c.abortDeadlock.Load(),
		AbortOther:         c.abortOther.Load(),
		ReadsExecuted:      c.readsExecuted.Load(),
		WritesExecuted:     c.writesExecuted.Load(),
		InconsistentReads:  c.inconsistentReads.Load(),
		InconsistentWrites: c.inconsistentWrites.Load(),
		WastedOps:          c.wastedOps.Load(),
		Waits:              c.waits.Load(),
		DirtySourceAborted: c.dirtySourceAborted.Load(),
	}
}

// AbortBreakdown returns the nonzero abort counters keyed by reason name
// — the shape the debug endpoint and the bench's per-cell JSON report.
func (s Snapshot) AbortBreakdown() map[string]int64 {
	out := make(map[string]int64)
	for reason, v := range map[AbortReason]int64{
		AbortLateRead:      s.AbortLateRead,
		AbortLateWrite:     s.AbortLateWrite,
		AbortImportLimit:   s.AbortImportLimit,
		AbortExportLimit:   s.AbortExportLimit,
		AbortWaitTimeout:   s.AbortWaitTimeout,
		AbortMissingObject: s.AbortMissingObject,
		AbortExplicit:      s.AbortExplicit,
		AbortDeadlock:      s.AbortDeadlock,
		AbortOther:         s.AbortOther,
	} {
		if v != 0 {
			out[reason.String()] = v
		}
	}
	return out
}

// Aborts sums all abort reasons — the paper's "number of retries".
func (s Snapshot) Aborts() int64 {
	return s.AbortLateRead + s.AbortLateWrite + s.AbortImportLimit +
		s.AbortExportLimit + s.AbortWaitTimeout + s.AbortMissingObject +
		s.AbortExplicit + s.AbortDeadlock + s.AbortOther
}

// TotalOps is the total number of executed operations, reads plus writes,
// including those of attempts that later aborted (Fig 10).
func (s Snapshot) TotalOps() int64 { return s.ReadsExecuted + s.WritesExecuted }

// InconsistentOps is the number of successful inconsistent operations
// (Fig 8).
func (s Snapshot) InconsistentOps() int64 {
	return s.InconsistentReads + s.InconsistentWrites
}

// OpsPerCommit is the average number of executed operations per committed
// transaction (Fig 13); zero commits yield zero.
func (s Snapshot) OpsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.TotalOps()) / float64(s.Commits)
}

// Sub returns the counter-wise difference s − t, used to confine a
// measurement to a timed interval.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		Begins:             s.Begins - t.Begins,
		Commits:            s.Commits - t.Commits,
		AbortLateRead:      s.AbortLateRead - t.AbortLateRead,
		AbortLateWrite:     s.AbortLateWrite - t.AbortLateWrite,
		AbortImportLimit:   s.AbortImportLimit - t.AbortImportLimit,
		AbortExportLimit:   s.AbortExportLimit - t.AbortExportLimit,
		AbortWaitTimeout:   s.AbortWaitTimeout - t.AbortWaitTimeout,
		AbortMissingObject: s.AbortMissingObject - t.AbortMissingObject,
		AbortExplicit:      s.AbortExplicit - t.AbortExplicit,
		AbortDeadlock:      s.AbortDeadlock - t.AbortDeadlock,
		AbortOther:         s.AbortOther - t.AbortOther,
		ReadsExecuted:      s.ReadsExecuted - t.ReadsExecuted,
		WritesExecuted:     s.WritesExecuted - t.WritesExecuted,
		InconsistentReads:  s.InconsistentReads - t.InconsistentReads,
		InconsistentWrites: s.InconsistentWrites - t.InconsistentWrites,
		WastedOps:          s.WastedOps - t.WastedOps,
		Waits:              s.Waits - t.Waits,
		DirtySourceAborted: s.DirtySourceAborted - t.DirtySourceAborted,
	}
}
