package history

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func ts(n int64) tsgen.Timestamp { return tsgen.Make(n, 0) }

// ev builds events tersely for hand-written histories.
func commit(txn core.TxnID, at int64) tso.Event {
	return tso.Event{Kind: tso.EvCommit, Txn: txn, TS: ts(at)}
}
func abort(txn core.TxnID, at int64) tso.Event {
	return tso.Event{Kind: tso.EvAbort, Txn: txn, TS: ts(at)}
}
func write(txn core.TxnID, at int64, obj core.ObjectID, v core.Value) tso.Event {
	return tso.Event{Kind: tso.EvWrite, Txn: txn, TS: ts(at), Object: obj, Value: v, Version: ts(at)}
}
func read(txn core.TxnID, at int64, obj core.ObjectID, version int64) tso.Event {
	vts := tsgen.None
	if version >= 0 {
		vts = ts(version)
	}
	return tso.Event{Kind: tso.EvRead, Txn: txn, TS: ts(at), Object: obj, Version: vts}
}

func TestSerialHistoryIsSerializable(t *testing.T) {
	events := []tso.Event{
		write(1, 10, 1, 100), write(1, 10, 2, 200), commit(1, 10),
		read(2, 20, 1, 10), read(2, 20, 2, 10), commit(2, 20),
		write(3, 30, 1, 150), commit(3, 30),
	}
	if err := CheckSerializable(events); err != nil {
		t.Errorf("serial history flagged: %v", err)
	}
}

func TestClassicNonSerializableCycleDetected(t *testing.T) {
	// T1 reads x's initial version then T2 writes x and y; T1 reads y's
	// new version: T1 → T2 (RW on x) and T2 → T1 (WR on y).
	events := []tso.Event{
		read(1, 10, 1, -1),
		write(2, 20, 1, 5), write(2, 20, 2, 6), commit(2, 20),
		read(1, 10, 2, 20),
		commit(1, 10),
	}
	err := CheckSerializable(events)
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !strings.Contains(err.Error(), "conflict cycle") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAbortedTransactionsExcluded(t *testing.T) {
	// The aborted writer's operations must not constrain the graph.
	events := []tso.Event{
		read(1, 10, 1, -1),
		write(2, 20, 1, 5), write(2, 20, 2, 6), abort(2, 20),
		read(1, 10, 2, -1),
		commit(1, 10),
	}
	if err := CheckSerializable(events); err != nil {
		t.Errorf("aborted txn created conflicts: %v", err)
	}
}

func TestReadOfNeverCommittedVersionFlagged(t *testing.T) {
	events := []tso.Event{
		write(2, 20, 1, 5), abort(2, 20),
		read(1, 30, 1, 20), // read version 20, whose writer aborted
		commit(1, 30),
	}
	err := CheckSerializable(events)
	if err == nil || !strings.Contains(err.Error(), "never committed") {
		t.Errorf("dirty read of aborted version not flagged: %v", err)
	}
	a := Analyze(events)
	if a.DirtyReadsOfAborted != 1 {
		t.Errorf("DirtyReadsOfAborted = %d, want 1", a.DirtyReadsOfAborted)
	}
}

func TestWWOrderFollowsVersionTimestamps(t *testing.T) {
	// Commit order differs from timestamp order across objects; version
	// order must follow version timestamps.
	events := []tso.Event{
		write(1, 10, 1, 1), commit(1, 10),
		write(2, 20, 1, 2), commit(2, 20),
		write(3, 30, 1, 3), commit(3, 30),
	}
	a := Analyze(events)
	if !a.Edges[1][2] || !a.Edges[2][3] {
		t.Errorf("WW chain missing: %v", a.Edges)
	}
	if a.Cycle() != nil {
		t.Error("linear WW chain reported cyclic")
	}
}

func TestRWEdgeToNextVersionOnly(t *testing.T) {
	events := []tso.Event{
		write(1, 10, 1, 1), commit(1, 10),
		read(4, 15, 1, 10), commit(4, 15),
		write(2, 20, 1, 2), commit(2, 20),
		write(3, 30, 1, 3), commit(3, 30),
	}
	a := Analyze(events)
	if !a.Edges[4][2] {
		t.Error("missing RW edge to next version's writer")
	}
	if a.Edges[4][3] {
		t.Error("RW edge to a later (non-adjacent) version")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Trace(tso.Event{Kind: tso.EvRead, Txn: core.TxnID(i)})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestInconsistentOpsCounted(t *testing.T) {
	events := []tso.Event{
		{Kind: tso.EvRead, Txn: 1, Inconsistency: 5},
		{Kind: tso.EvWrite, Txn: 2, Inconsistency: 3, Version: ts(1)},
		{Kind: tso.EvRead, Txn: 1, Inconsistency: 0},
	}
	if got := Analyze(events).InconsistentOps; got != 2 {
		t.Errorf("InconsistentOps = %d, want 2", got)
	}
}

// --- end-to-end: the engine at zero epsilon emits only serializable
// histories; with bounds it can emit the classic non-SR interleaving. ---

func newTracedEngine(t *testing.T, numObjects int, tracer tso.Tracer) *tso.Engine {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= numObjects; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	return tso.NewEngine(st, tso.Options{Tracer: tracer})
}

func TestEngineSRRandomWorkloadIsSerializable(t *testing.T) {
	rec := NewRecorder()
	e := newTracedEngine(t, 6, rec)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			gen := tsgen.NewGenerator(w, &tsgen.LogicalClock{})
			for i := 0; i < 40; i++ {
				var p *core.Program
				if rng.Intn(2) == 0 {
					p = core.NewQuery(0,
						core.ObjectID(1+rng.Intn(6)))
					p.Read(core.ObjectID(1 + (int(p.Ops[0].Object)+2)%6))
				} else {
					a := core.ObjectID(1 + rng.Intn(6))
					p = core.NewUpdate(0).Read(a).WriteDelta(core.ObjectID(1+(int(a)+1)%6), core.Value(rng.Intn(20)))
				}
				if p.Validate() != nil {
					continue
				}
				if _, _, err := e.RunRetry(p, gen, 500); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := CheckSerializable(rec.Events()); err != nil {
		t.Errorf("zero-epsilon execution not serializable: %v", err)
	}
}

func TestEngineESRAdmitsNonSerializableHistory(t *testing.T) {
	// The canonical ESR interleaving: Q reads x, then U (older ts) writes
	// x (case 3) and writes y; Q then reads y seeing U's committed value
	// (case 1). Conflicts: Q →RW U (x), U →WR Q (y): a cycle, admitted
	// because both inconsistencies fit the bounds.
	rec := NewRecorder()
	e := newTracedEngine(t, 2, rec)
	q, err := e.Begin(core.Query, ts(20), core.BoundSpec{Transaction: core.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	u, err := e.Begin(core.Update, ts(10), core.BoundSpec{Transaction: core.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(u, 1, 130); err != nil { // case 3 vs Q's read
		t.Fatal(err)
	}
	if err := e.Write(u, 2, 230); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 2); err != nil { // case 1: committed newer data
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	err = CheckSerializable(rec.Events())
	if err == nil {
		t.Fatal("ESR interleaving unexpectedly serializable — the relaxation paths were not exercised")
	}
	if !strings.Contains(err.Error(), "conflict cycle") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}
