// Package history records execution histories emitted by the engine and
// checks them for conflict serializability.
//
// It is the test substrate that backs the paper's correctness claims: a
// zero-epsilon configuration must produce only serializable histories
// (ESR reduces to SR when the bounds are zero, §2), while epsilon
// configurations may produce non-serializable histories whose value
// divergence stays within the bounds. The checker builds the classic
// conflict graph over committed transactions — write-write edges from the
// version order, write-read edges from reads of a version to its writer,
// and read-write edges from a version's readers to the writer of the next
// version — and searches it for cycles.
package history

import (
	"fmt"
	"sort"
	"sync"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// Recorder implements tso.Tracer, collecting events thread-safely.
type Recorder struct {
	mu     sync.Mutex
	events []tso.Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Trace implements tso.Tracer.
func (r *Recorder) Trace(ev tso.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []tso.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]tso.Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Analysis is the digest of a history: committed transactions, the
// version chains per object, and the conflict graph.
type Analysis struct {
	// Committed maps every committed attempt to its timestamp.
	Committed map[core.TxnID]tsgen.Timestamp
	// Edges is the conflict graph adjacency over committed attempts.
	Edges map[core.TxnID]map[core.TxnID]bool
	// DirtyReadsOfAborted counts reads whose source version's writer
	// aborted — allowed under ESR (and metered as the §5.1 corner),
	// forbidden under SR.
	DirtyReadsOfAborted int
	// InconsistentOps counts operations that carried nonzero metered
	// inconsistency.
	InconsistentOps int
}

// version is one committed write of an object.
type version struct {
	ts     tsgen.Timestamp
	writer core.TxnID
}

// Analyze digests an event stream.
func Analyze(events []tso.Event) *Analysis {
	a := &Analysis{
		Committed: make(map[core.TxnID]tsgen.Timestamp),
		Edges:     make(map[core.TxnID]map[core.TxnID]bool),
	}
	aborted := make(map[core.TxnID]bool)
	for _, ev := range events {
		switch ev.Kind {
		case tso.EvCommit:
			a.Committed[ev.Txn] = ev.TS
		case tso.EvAbort:
			aborted[ev.Txn] = true
		case tso.EvRead, tso.EvWrite:
			if ev.Inconsistency > 0 {
				a.InconsistentOps++
			}
		}
	}

	// Per object: committed versions and committed reads.
	versionsByObject := make(map[core.ObjectID][]version)
	type readRec struct {
		reader  core.TxnID
		version tsgen.Timestamp
	}
	readsByObject := make(map[core.ObjectID][]readRec)
	writerOfVersion := make(map[core.ObjectID]map[tsgen.Timestamp]core.TxnID)

	for _, ev := range events {
		switch ev.Kind {
		case tso.EvWrite:
			if _, ok := a.Committed[ev.Txn]; !ok {
				continue
			}
			versionsByObject[ev.Object] = append(versionsByObject[ev.Object], version{ts: ev.Version, writer: ev.Txn})
			m := writerOfVersion[ev.Object]
			if m == nil {
				m = make(map[tsgen.Timestamp]core.TxnID)
				writerOfVersion[ev.Object] = m
			}
			m[ev.Version] = ev.Txn
		case tso.EvRead:
			if _, ok := a.Committed[ev.Txn]; !ok {
				continue
			}
			readsByObject[ev.Object] = append(readsByObject[ev.Object], readRec{reader: ev.Txn, version: ev.Version})
		}
	}

	addEdge := func(from, to core.TxnID) {
		if from == to {
			return
		}
		m := a.Edges[from]
		if m == nil {
			m = make(map[core.TxnID]bool)
			a.Edges[from] = m
		}
		m[to] = true
	}

	for obj, vs := range versionsByObject {
		// Committed versions of one object have strictly increasing
		// write timestamps under timestamp ordering, so sorting by
		// version timestamp recovers the version order.
		sort.Slice(vs, func(i, j int) bool { return vs[i].ts.Before(vs[j].ts) })
		versionsByObject[obj] = vs
		for i := 1; i < len(vs); i++ {
			addEdge(vs[i-1].writer, vs[i].writer) // WW
		}
	}

	for obj, rs := range readsByObject {
		vs := versionsByObject[obj]
		for _, r := range rs {
			// WR: the writer of the version read precedes the reader.
			// Version "none" is the initial load with no writer.
			if !r.version.IsNone() {
				if w, ok := writerOfVersion[obj][r.version]; ok {
					addEdge(w, r.reader)
				} else {
					// The read consumed a version that never committed.
					a.DirtyReadsOfAborted++
				}
			}
			// RW: the reader precedes the writer of the next version.
			for _, v := range vs {
				if r.version.Before(v.ts) {
					addEdge(r.reader, v.writer)
					break
				}
			}
		}
	}
	return a
}

// Cycle returns a cycle in the conflict graph if one exists (a witness of
// non-serializability), or nil if the graph is acyclic.
func (a *Analysis) Cycle() []core.TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[core.TxnID]int, len(a.Edges))
	parent := make(map[core.TxnID]core.TxnID)

	// Deterministic iteration order for reproducible witnesses.
	nodes := make([]core.TxnID, 0, len(a.Edges))
	for n := range a.Edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var cycleStart, cycleEnd core.TxnID
	var found bool
	var dfs func(u core.TxnID)
	dfs = func(u core.TxnID) {
		if found {
			return
		}
		color[u] = grey
		succs := make([]core.TxnID, 0, len(a.Edges[u]))
		for v := range a.Edges[u] {
			succs = append(succs, v)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, v := range succs {
			if found {
				return
			}
			switch color[v] {
			case white:
				parent[v] = u
				dfs(v)
			case grey:
				cycleStart, cycleEnd, found = v, u, true
				return
			}
		}
		color[u] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
			if found {
				break
			}
		}
	}
	if !found {
		return nil
	}
	cycle := []core.TxnID{cycleStart}
	for at := cycleEnd; at != cycleStart; at = parent[at] {
		cycle = append(cycle, at)
	}
	// Reverse into edge order start → … → start.
	for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return append(cycle, cycleStart)
}

// CheckSerializable analyzes a history and returns an error describing
// the violation if the committed projection is not conflict serializable
// or contains reads of never-committed versions. It delegates to the
// offline oracle's strict mode (internal/esrcheck): conflict
// serializability is the ε=0 special case of the epsilon guarantee.
func CheckSerializable(events []tso.Event) error {
	if err := esrcheck.CheckSerializable(events); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return nil
}
