package epsilondb

// BenchmarkWALCommit compares the engine commit hot path across the three
// durability settings: WAL off (the in-memory baseline), group commit,
// and the per-transaction-fsync baseline group commit exists to beat.
// fsync latency is injected as a fixed delay over the in-memory log
// filesystem, so the batching ratio measures the protocol — how many
// commits share one fsync — rather than the host disk's flush time,
// and stays comparable across machines like the other hot-path cells.

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

// walBenchFsyncDelay models one disk flush. 100µs sits between an
// enterprise SSD and a cloud block device; what matters is that it is
// identical for the group and per-transaction cells.
const walBenchFsyncDelay = 100 * time.Microsecond

// slowFS injects walBenchFsyncDelay into every data and directory sync
// of the wrapped filesystem.
type slowFS struct {
	wal.FS
}

func (s slowFS) Create(name string) (wal.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowFile{f}, nil
}

func (s slowFS) SyncDir() error {
	time.Sleep(walBenchFsyncDelay)
	return s.FS.SyncDir()
}

type slowFile struct {
	wal.File
}

func (f slowFile) Sync() error {
	time.Sleep(walBenchFsyncDelay)
	return f.File.Sync()
}

// newWALBenchEngine builds a logged engine over a delay-injected MemFS.
func newWALBenchEngine(b *testing.B, syncInterval time.Duration) *tso.Engine {
	b.Helper()
	fs := slowFS{wal.NewMemFS()}
	cfg := storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit}
	store, l, _, err := wal.Recover(fs, cfg, wal.Options{
		SyncInterval: syncInterval,
		SegmentBytes: 1 << 30, // no mid-benchmark segment rolls
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = l.Close() })
	for i := 0; i < 1000; i++ {
		if _, err := store.Create(core.ObjectID(i), 1000); err != nil {
			b.Fatal(err)
		}
	}
	return tso.NewEngine(store, tso.Options{Durability: l})
}

// runWALCommitLoad drives the same Begin/Read/WriteDelta/Commit cycle as
// BenchmarkEngineHotPath, fanned out well past GOMAXPROCS so the
// committer always has a deep pending batch to amortize each fsync over.
func runWALCommitLoad(b *testing.B, e *tso.Engine) {
	b.Helper()
	clock := &tsgen.LogicalClock{}
	var site int32
	spec := core.UnboundedSpec()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := int(atomic.AddInt32(&site, 1))
		gen := tsgen.NewGenerator(s, clock)
		// Disjoint object ranges per site: the cells compare durability
		// cost, not conflict behavior.
		base := core.ObjectID((s * 8) % 992)
		i := 0
		for pb.Next() {
			txn, err := e.Begin(core.Update, gen.Next(), spec)
			if err != nil {
				b.Fatal(err)
			}
			obj := base + core.ObjectID(i%8)
			if _, err := e.Read(txn, obj); err != nil {
				b.Fatal(err)
			}
			if _, err := e.WriteDelta(txn, obj, 1); err != nil {
				b.Fatal(err)
			}
			if err := e.Commit(txn); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkWALCommit(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		e, _ := newBenchEngine(b)
		b.ReportAllocs()
		runWALCommitLoad(b, e)
	})
	b.Run("group", func(b *testing.B) {
		e := newWALBenchEngine(b, wal.DefaultSyncInterval)
		b.ReportAllocs()
		runWALCommitLoad(b, e)
	})
	b.Run("fsync-per-txn", func(b *testing.B) {
		e := newWALBenchEngine(b, -1)
		b.ReportAllocs()
		runWALCommitLoad(b, e)
	})
}
