package epsilondb

// One benchmark per table and figure of the paper's evaluation (§7–8),
// plus the ablations from DESIGN.md and micro-benchmarks of the hot
// paths. The figure benchmarks drive the same sweep code as cmd/esr-bench
// on the deterministic virtual timeline, so `go test -bench=.` regenerates
// every series in seconds; custom metrics surface each figure's headline
// numbers (peak throughput, thrashing point, abort counts).

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/experiment"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wire"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// benchConfig is the shortened per-cell configuration used by the figure
// benchmarks: 300 virtual milliseconds per cell, one repetition.
func benchConfig() experiment.Config {
	cfg := experiment.DefaultConfig(workload.LevelHigh)
	cfg.Duration = 300 * time.Millisecond
	cfg.Warmup = 50 * time.Millisecond
	cfg.Reps = 1
	return cfg
}

func benchMPLs() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} }

// seriesMax returns the peak y value of a series.
func seriesMax(s experiment.Series) float64 {
	max := 0.0
	for _, y := range s.Y {
		if y > max {
			max = y
		}
	}
	return max
}

// seriesLast returns the final y value of a series.
func seriesLast(s experiment.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// BenchmarkTable1BoundLevels regenerates the §7 table of bound
// magnitudes (experiment E1).
func BenchmarkTable1BoundLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.BoundLevelsTable()
		if len(f.Series) != 2 {
			b.Fatal("table shape")
		}
	}
	f := experiment.BoundLevelsTable()
	b.ReportMetric(f.Series[0].Y[0], "TIL-high")
	b.ReportMetric(f.Series[1].Y[0], "TEL-high")
}

// runMPLSweep executes the Figures 7–10 sweep once.
func runMPLSweep(b *testing.B) *experiment.MPLSweep {
	b.Helper()
	s, err := experiment.RunMPLSweep(benchConfig(), benchMPLs(), workload.Levels(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig07ThroughputVsMPL regenerates Figure 7 (experiment E2) and
// reports the thrashing points whose shift is the paper's first headline
// observation.
func BenchmarkFig07ThroughputVsMPL(b *testing.B) {
	var s *experiment.MPLSweep
	for i := 0; i < b.N; i++ {
		s = runMPLSweep(b)
	}
	f := s.Figure7()
	b.ReportMetric(float64(s.ThrashingPoint(0)), "thrash-MPL-zero")
	b.ReportMetric(float64(s.ThrashingPoint(len(s.Levels)-1)), "thrash-MPL-high")
	b.ReportMetric(seriesMax(f.Series[0]), "peak-tput-zero")
	b.ReportMetric(seriesMax(f.Series[len(f.Series)-1]), "peak-tput-high")
}

// BenchmarkFig08InconsistentOpsVsMPL regenerates Figure 8 (E3).
func BenchmarkFig08InconsistentOpsVsMPL(b *testing.B) {
	var s *experiment.MPLSweep
	for i := 0; i < b.N; i++ {
		s = runMPLSweep(b)
	}
	f := s.Figure8()
	b.ReportMetric(seriesLast(f.Series[0]), "incons-ops-low-mpl10")
	b.ReportMetric(seriesLast(f.Series[len(f.Series)-1]), "incons-ops-high-mpl10")
}

// BenchmarkFig09AbortsVsMPL regenerates Figure 9 (E4): aborts near zero
// at high epsilon, shooting up at zero epsilon.
func BenchmarkFig09AbortsVsMPL(b *testing.B) {
	var s *experiment.MPLSweep
	for i := 0; i < b.N; i++ {
		s = runMPLSweep(b)
	}
	f := s.Figure9()
	b.ReportMetric(seriesLast(f.Series[0]), "aborts-zero-mpl10")
	b.ReportMetric(seriesLast(f.Series[len(f.Series)-1]), "aborts-high-mpl10")
	b.ReportMetric(f.Series[len(f.Series)-1].Y[3], "aborts-high-mpl4")
}

// BenchmarkFig10OperationsVsMPL regenerates Figure 10 (E5): total
// executed operations expose the work wasted on aborted attempts.
func BenchmarkFig10OperationsVsMPL(b *testing.B) {
	var s *experiment.MPLSweep
	for i := 0; i < b.N; i++ {
		s = runMPLSweep(b)
	}
	f := s.Figure10()
	b.ReportMetric(seriesLast(f.Series[0]), "ops-zero-mpl10")
	b.ReportMetric(seriesLast(f.Series[len(f.Series)-1]), "ops-high-mpl10")
}

// BenchmarkFig11ThroughputVsTIL regenerates Figure 11 (E6): throughput
// rising with TIL, steepest at small-to-medium values.
func BenchmarkFig11ThroughputVsTIL(b *testing.B) {
	tils := []core.Distance{0, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000}
	tels := []core.Distance{1_000, 5_000, 10_000}
	var f experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, _, err = experiment.RunTILSweep(benchConfig(), 4, tils, tels, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := f.Series[len(f.Series)-1]
	b.ReportMetric(last.Y[0], "tput-til0")
	b.ReportMetric(seriesLast(last), "tput-til200k")
}

// runOILSweep executes the Figures 12–13 sweep once.
func runOILSweep(b *testing.B) *experiment.OILSweep {
	b.Helper()
	s, err := experiment.RunOILSweep(benchConfig(), 4,
		[]float64{0, 0.5, 1, 2, 4, 8, 16, 32, 64},
		[]core.Distance{10_000, 50_000, 100_000}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig12ThroughputVsOIL regenerates Figure 12 (E7).
func BenchmarkFig12ThroughputVsOIL(b *testing.B) {
	var s *experiment.OILSweep
	for i := 0; i < b.N; i++ {
		s = runOILSweep(b)
	}
	f := s.Figure12()
	b.ReportMetric(f.Series[0].Y[0], "tput-lowTIL-oil0")
	b.ReportMetric(seriesLast(f.Series[0]), "tput-lowTIL-oilmax")
	b.ReportMetric(seriesLast(f.Series[2]), "tput-highTIL-oilmax")
}

// BenchmarkFig13OpsPerTxnVsOIL regenerates Figure 13 (E8): the average
// operations per completed transaction, whose upturn at high OIL under
// low TIL is the paper's second headline observation.
func BenchmarkFig13OpsPerTxnVsOIL(b *testing.B) {
	var s *experiment.OILSweep
	for i := 0; i < b.N; i++ {
		s = runOILSweep(b)
	}
	f := s.Figure13()
	low := f.Series[0]
	b.ReportMetric(low.Y[0], "ops/txn-lowTIL-oil0")
	b.ReportMetric(seriesLast(low), "ops/txn-lowTIL-oilmax")
	b.ReportMetric(seriesLast(f.Series[2]), "ops/txn-highTIL-oilmax")
}

// BenchmarkAblationCCProtocols compares epsilon-TO against strict 2PL
// and MVTO (ablation A1).
func BenchmarkAblationCCProtocols(b *testing.B) {
	protocols := []experiment.Protocol{
		experiment.ProtocolTO, experiment.ProtocolTwoPL, experiment.ProtocolMVTO,
	}
	var f experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, _, err = experiment.RunCCComparison(benchConfig(), []int{1, 2, 4, 6}, workload.LevelHigh, protocols, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, se := range f.Series {
		b.ReportMetric(seriesMax(se), "peak-tput-"+se.Name)
	}
}

// BenchmarkAblationHistoryDepth sweeps the per-object write-history
// depth K (ablation A2, §5.1's empirical K=20).
func BenchmarkAblationHistoryDepth(b *testing.B) {
	var f experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, _, err = experiment.RunHistoryAblation(benchConfig(), []int{1, 5, 20, 100}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	misses := f.Series[2]
	b.ReportMetric(misses.Y[0], "proper-misses-K1")
	b.ReportMetric(misses.Y[2], "proper-misses-K20")
}

// BenchmarkAblationHierarchyDepth measures the bottom-up control cost of
// hierarchical bounds by depth (ablation A3, the §3.1 caveat).
func BenchmarkAblationHierarchyDepth(b *testing.B) {
	var f experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiment.RunHierarchyOverhead([]int{1, 2, 4, 8}, 100_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	se := f.Series[0]
	b.ReportMetric(se.Y[0], "ns/admit-depth1")
	b.ReportMetric(seriesLast(se), "ns/admit-depth8")
}

// --- Micro-benchmarks of the hot paths ---

func newBenchEngine(b *testing.B) (*tso.Engine, *tsgen.Generator) {
	b.Helper()
	store := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 0; i < 1000; i++ {
		if _, err := store.Create(core.ObjectID(i), 1000); err != nil {
			b.Fatal(err)
		}
	}
	return tso.NewEngine(store, tso.Options{}), tsgen.NewGenerator(0, &tsgen.LogicalClock{})
}

// BenchmarkEngineQueryTxn measures a full consistent 20-read query ET.
func BenchmarkEngineQueryTxn(b *testing.B) {
	e, gen := newBenchEngine(b)
	p := core.NewQuery(core.NoLimit)
	for i := 0; i < 20; i++ {
		p.Read(core.ObjectID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunProgram(p, gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineUpdateTxn measures a full 6-operation update ET.
func BenchmarkEngineUpdateTxn(b *testing.B) {
	e, gen := newBenchEngine(b)
	p := core.NewUpdate(core.NoLimit).
		Read(1).Read(2).Read(3).
		WriteDelta(4, 1).WriteDelta(5, -1).WriteDelta(6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunProgram(p, gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccumulatorAdmit measures the two-level bounds check that
// guards every operation.
func BenchmarkAccumulatorAdmit(b *testing.B) {
	acc, err := core.NewAccumulator(nil, core.UnboundedSpec(), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := acc.Admit(core.ObjectID(i%100), 1, core.NoLimit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccumulatorAdmitHierarchical measures the bounds check
// through a four-level hierarchy.
func BenchmarkAccumulatorAdmitHierarchical(b *testing.B) {
	schema := core.NewSchema()
	g1 := schema.MustAddGroup("g1", core.RootGroup)
	g2 := schema.MustAddGroup("g2", g1)
	g3 := schema.MustAddGroup("g3", g2)
	if err := schema.Assign(1, g3); err != nil {
		b.Fatal(err)
	}
	spec := core.UnboundedSpec().
		WithGroup("g1", core.NoLimit).WithGroup("g2", core.NoLimit).WithGroup("g3", core.NoLimit)
	acc, err := core.NewAccumulator(schema, spec, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := acc.Admit(1, 1, core.NoLimit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineHotPath measures the per-transaction engine cycle the
// server loop drives — Begin, read, delta-write, Commit — serially and
// with concurrent sites hammering the sharded transaction table.
func BenchmarkEngineHotPath(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		e, gen := newBenchEngine(b)
		spec := core.UnboundedSpec()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn, err := e.Begin(core.Update, gen.Next(), spec)
			if err != nil {
				b.Fatal(err)
			}
			obj := core.ObjectID(i % 1000)
			if _, err := e.Read(txn, obj); err != nil {
				b.Fatal(err)
			}
			if _, err := e.WriteDelta(txn, obj, 1); err != nil {
				b.Fatal(err)
			}
			if err := e.Commit(txn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		e, _ := newBenchEngine(b)
		clock := &tsgen.LogicalClock{}
		var site int32
		spec := core.UnboundedSpec()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			s := int(atomic.AddInt32(&site, 1))
			gen := tsgen.NewGenerator(s, clock)
			// Disjoint object ranges per site: the benchmark targets
			// transaction-table contention, not data conflicts.
			base := core.ObjectID((s * 8) % 992)
			i := 0
			for pb.Next() {
				txn, err := e.Begin(core.Update, gen.Next(), spec)
				if err != nil {
					b.Fatal(err)
				}
				obj := base + core.ObjectID(i%8)
				if _, err := e.Read(txn, obj); err != nil {
					b.Fatal(err)
				}
				if _, err := e.WriteDelta(txn, obj, 1); err != nil {
					b.Fatal(err)
				}
				if err := e.Commit(txn); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// BenchmarkWireRoundTrip measures encoding and decoding one message per
// iteration: a Begin with a hierarchical specification (the allocating
// worst case), and the recycled data-operation fast path the server loop
// runs in steady state, which must not allocate at all.
func BenchmarkWireRoundTrip(b *testing.B) {
	b.Run("begin", func(b *testing.B) {
		msg := &wire.Begin{
			Kind:      core.Query,
			Timestamp: tsgen.Make(123456, 3),
			Spec: core.BoundSpec{
				Transaction: 100_000,
				Groups:      map[string]core.Distance{"company": 4000, "personal": 3000},
			},
		}
		var buf bytes.Buffer
		conn := wire.NewConn(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := conn.WriteMessage(msg); err != nil {
				b.Fatal(err)
			}
			m, err := conn.ReadMessage()
			if err != nil {
				b.Fatal(err)
			}
			wire.Recycle(m)
		}
	})
	b.Run("fastpath", func(b *testing.B) {
		msg := &wire.Write{Txn: 1, Object: 2, Delta: true, Value: 3}
		var buf bytes.Buffer
		conn := wire.NewConn(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := conn.WriteMessage(msg); err != nil {
				b.Fatal(err)
			}
			m, err := conn.ReadMessage()
			if err != nil {
				b.Fatal(err)
			}
			wire.Recycle(m)
		}
	})
	// pipelined: the same fast-path op inside a Tagged envelope, the
	// per-frame cost of the demultiplexing core's wire format. Must stay
	// allocation-free like the bare fast path.
	b.Run("pipelined", func(b *testing.B) {
		msg := &wire.Tagged{Tag: 7, Inner: &wire.Write{Txn: 1, Object: 2, Delta: true, Value: 3}}
		var buf bytes.Buffer
		conn := wire.NewConn(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := conn.WriteMessage(msg); err != nil {
				b.Fatal(err)
			}
			m, err := conn.ReadMessage()
			if err != nil {
				b.Fatal(err)
			}
			tg := m.(*wire.Tagged)
			wire.Recycle(tg.Inner)
			wire.Recycle(tg)
		}
	})
	// batched: 16 ops per CRC-framed Batch frame; the reported ns/op is
	// per frame, so divide by 16 for the amortized per-op cost.
	b.Run("batched", func(b *testing.B) {
		const ops = 16
		msg := &wire.Batch{}
		for i := 0; i < ops; i++ {
			msg.Ops = append(msg.Ops, wire.BatchItem{
				Tag: uint32(i + 1),
				Msg: &wire.Write{Txn: 1, Object: core.ObjectID(i), Delta: true, Value: 3},
			})
		}
		var buf bytes.Buffer
		conn := wire.NewConn(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := conn.WriteMessage(msg); err != nil {
				b.Fatal(err)
			}
			m, err := conn.ReadMessage()
			if err != nil {
				b.Fatal(err)
			}
			bt := m.(*wire.Batch)
			for j := range bt.Ops {
				wire.Recycle(bt.Ops[j].Msg)
				bt.Ops[j].Msg = nil
			}
			wire.Recycle(bt)
		}
	})
}

// BenchmarkStorageFindProper measures the proper-value lookup through a
// full 20-deep write history.
func BenchmarkStorageFindProper(b *testing.B) {
	o := storage.NewObject(1, 1000, core.NoLimit, core.NoLimit, 20)
	for i := 1; i <= 25; i++ {
		ts := tsgen.Make(int64(i*10), 0)
		if err := o.BeginWrite(core.TxnID(i), ts, core.Value(i)); err != nil {
			b.Fatal(err)
		}
		o.CommitWrite(core.TxnID(i))
	}
	probe := tsgen.Make(105, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := o.FindProper(probe); !ok {
			b.Fatal("lookup failed")
		}
	}
}
