// esr-check is the offline epsilon-serializability oracle's CLI: it
// reads recorded execution traces (esr-trace/1 JSONL, as written by
// `esr-server -trace` or a history.Recorder dump) and proves or refutes
// the epsilon guarantee after the fact — every relaxed read within its
// object bound, every transaction within its root bound, and a
// serializable witness order over the hard conflicts.
//
//	esr-check [-json] [-zero] [-merge] [trace.jsonl ...]
//
// With no file arguments the trace is read from stdin. -zero runs the
// strict mode instead: the history must be exactly conflict
// serializable with no reads of never-committed versions, the ε=0
// special case — what a serializable baseline (2PL, MVTO, or a
// zero-bound TO run) must satisfy. -json emits the full report per
// trace for CI consumption.
//
// -merge certifies all inputs as ONE history instead of one verdict
// per file. A replica deployment records one trace per process
// (primary plus each follower started with -replica-of), and no file
// alone is checkable: follower traces read versions whose writes live
// in the primary's trace. Merging restores the closed history the
// oracle needs.
//
// Exit codes: 0 every trace certified, 1 at least one refuted, 2
// operational failure (unreadable file, corrupt trace).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/epsilondb/epsilondb/internal/esrcheck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("esr-check: ")
	jsonFlag := flag.Bool("json", false, "emit the full report as JSON, one object per trace")
	zeroFlag := flag.Bool("zero", false, "strict mode: require exact conflict serializability (the ε=0 case)")
	mergeFlag := flag.Bool("merge", false, "certify all inputs as one history (primary + replica traces of one deployment)")
	flag.Parse()

	type input struct {
		name string
		open func() (io.ReadCloser, error)
	}
	var inputs []input
	if flag.NArg() == 0 {
		inputs = append(inputs, input{
			name: "<stdin>",
			open: func() (io.ReadCloser, error) { return io.NopCloser(os.Stdin), nil },
		})
	}
	for _, path := range flag.Args() {
		path := path
		inputs = append(inputs, input{
			name: path,
			open: func() (io.ReadCloser, error) { return os.Open(path) },
		})
	}

	var traces []*esrcheck.Trace
	for _, in := range inputs {
		r, err := in.open()
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		tr, err := esrcheck.ReadTrace(r)
		r.Close()
		if err != nil {
			log.Printf("%s: %v", in.name, err)
			os.Exit(2)
		}
		traces = append(traces, tr)
	}

	if *mergeFlag {
		merged := &esrcheck.Trace{}
		names := ""
		for i, tr := range traces {
			if i > 0 {
				names += "+"
			}
			names += inputs[i].name
			if tr.Schema != "" && merged.Schema != "" && tr.Schema != merged.Schema {
				log.Printf("%s: schema %q does not match %q; refusing to merge", inputs[i].name, tr.Schema, merged.Schema)
				os.Exit(2)
			}
			if tr.Schema != "" {
				merged.Schema = tr.Schema
			}
			merged.Events = append(merged.Events, tr.Events...)
			merged.TornTail = merged.TornTail || tr.TornTail
		}
		if !check(names, merged, *zeroFlag, *jsonFlag) {
			os.Exit(1)
		}
		return
	}

	refuted := false
	for i, tr := range traces {
		if !check(inputs[i].name, tr, *zeroFlag, *jsonFlag) {
			refuted = true
		}
	}
	if refuted {
		os.Exit(1)
	}
}

// check runs one decoded trace through the oracle and reports the
// verdict; it returns false when the trace is refuted.
func check(name string, tr *esrcheck.Trace, zero, asJSON bool) bool {
	rep := esrcheck.Check(tr.Events)
	if tr.TornTail {
		rep.Notes = append(rep.Notes, "torn final trace line dropped (crash mid-append)")
	}
	if zero {
		if err := esrcheck.CheckSerializable(tr.Events); err != nil {
			rep.Violations = append(rep.Violations, esrcheck.Violation{
				Code: "strict-serializability", Msg: err.Error(),
			})
		}
	}
	if asJSON {
		out := struct {
			Trace  string `json:"trace"`
			Schema string `json:"schema,omitempty"`
			*esrcheck.Report
		}{Trace: name, Schema: tr.Schema, Report: rep}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		return rep.OK()
	}
	if rep.OK() {
		fmt.Printf("%s: certified: %d txns (%d aborted attempts), %d ops, %d relaxed reads (%d dirty), max distance %d, witness of %d\n",
			name, rep.Txns, rep.Aborted, rep.Ops, rep.RelaxedReads, rep.DirtyReads, rep.MaxDistance, len(rep.Witness))
	} else {
		fmt.Printf("%s: REFUTED: %d violation(s)\n", name, len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  [%s] txn %d obj %d: %s\n", v.Code, v.Txn, v.Object, v.Msg)
		}
	}
	for _, n := range rep.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	return rep.OK()
}
