// Command esr-client is a workload-driving transaction client (§6): it
// connects to an esr-server, synchronizes its virtual clock, and submits
// randomly generated epsilon transactions, resubmitting aborted ones
// with fresh timestamps until they commit.
//
//	esr-client -addr 127.0.0.1:7400 -site 1 -txns 500 -level high
//
// Several clients with distinct -site ids form a multiprogramming level,
// exactly like the paper's one-client-per-workstation setup. -skew
// offsets this client's local clock to exercise the correction factor.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/txnlang"
	"github.com/epsilondb/epsilondb/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7400", "server address")
		site     = flag.Int("site", 1, "client site id (unique per client)")
		txns     = flag.Int("txns", 100, "transactions to complete")
		level    = flag.String("level", "high", "bound level: zero, low, medium, high")
		objects  = flag.Int("objects", 1000, "object-id space (must match the server)")
		hot      = flag.Int("hot", 20, "hot-set size")
		seed     = flag.Int64("seed", 0, "workload seed (0 derives from site)")
		skew     = flag.Duration("skew", 0, "simulated local clock skew")
		loadFile = flag.String("file", "", "replay a transaction load file instead of generating")
		generate = flag.String("generate", "", "write a load file of -txns transactions and exit")
	)
	flag.Parse()

	var lv workload.Level
	switch *level {
	case "zero":
		lv = workload.LevelZero
	case "low":
		lv = workload.LevelLow
	case "medium":
		lv = workload.LevelMedium
	case "high":
		lv = workload.LevelHigh
	default:
		log.Fatalf("esr-client: unknown level %q", *level)
	}
	params := workload.DefaultParams(lv)
	params.NumObjects = *objects
	params.HotSetSize = *hot
	if *seed == 0 {
		*seed = int64(*site)*9973 + 7
	}
	gen, err := workload.NewGenerator(params, *seed)
	if err != nil {
		log.Fatalf("esr-client: %v", err)
	}

	if *generate != "" {
		// Emit the pre-generated per-client data file of §6 and exit.
		f, err := os.Create(*generate)
		if err != nil {
			log.Fatalf("esr-client: %v", err)
		}
		if err := gen.WriteLoadFile(f, *txns); err != nil {
			log.Fatalf("esr-client: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("esr-client: %v", err)
		}
		fmt.Printf("wrote %d transactions to %s\n", *txns, *generate)
		return
	}

	clock := tsgen.Clock(tsgen.WallClock{})
	if *skew != 0 {
		clock = tsgen.SkewedClock{Base: tsgen.WallClock{}, Skew: skew.Microseconds()}
	}
	c, err := client.Dial(*addr, client.Options{Site: *site, Clock: clock})
	if err != nil {
		log.Fatalf("esr-client: %v", err)
	}
	defer c.Close()
	log.Printf("esr-client: site %d connected, clock correction %d µs", *site, c.Correction())

	start := time.Now()
	attempts, completed := 0, 0
	if *loadFile != "" {
		// Replay a pre-generated load file through the transaction
		// language, the prototype's client mode (§6).
		src, err := os.ReadFile(*loadFile)
		if err != nil {
			log.Fatalf("esr-client: %v", err)
		}
		scripts, err := txnlang.ParseAll(string(src))
		if err != nil {
			log.Fatalf("esr-client: %s: %v", *loadFile, err)
		}
		runner := txnlang.ClientRunner{Client: c}
		for i, s := range scripts {
			_, a, err := txnlang.RunRetry(s, runner, nil, 0)
			attempts += a
			if err != nil {
				log.Fatalf("esr-client: script %d: %v", i, err)
			}
			completed++
		}
	} else {
		for i := 0; i < *txns; i++ {
			p := gen.Next()
			_, a, err := c.RunRetry(p, 0)
			attempts += a
			if err != nil {
				log.Fatalf("esr-client: txn %d: %v", i, err)
			}
			completed++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("site %d: %d txns in %v (%.1f txn/s), %d attempts (%d retries)\n",
		*site, completed, elapsed.Round(time.Millisecond),
		float64(completed)/elapsed.Seconds(), attempts, attempts-completed)
	if snap, misses, err := c.Stats(); err == nil {
		fmt.Printf("server: %d commits, %d aborts, %d inconsistent ops, %d proper-misses\n",
			snap.Commits, snap.Aborts(), snap.InconsistentOps(), misses)
	}
}
