// Command esr-server runs the central transaction server of the
// prototype (§6): an in-memory database behind the binary wire protocol,
// with timestamp-ordered ESR concurrency control.
//
//	esr-server -addr :7400 -objects 1000 -oil 4000:16000 -oel 4000:16000
//
// The database is populated with -objects objects valued 1000–9999 (the
// paper's start-up data file); per-object OIL/OEL are drawn uniformly
// from the given min:max ranges ("the values of OIL and OEL are randomly
// generated within a specified range"). -latency adds a per-operation
// service delay to emulate the prototype's RPC cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7400", "listen address")
		objects  = flag.Int("objects", 1000, "number of objects to load")
		valueMin = flag.Int64("value-min", 1000, "minimum initial object value")
		valueMax = flag.Int64("value-max", 9999, "maximum initial object value")
		oilRange = flag.String("oil", "unlimited", "object import limit range min:max, or 'unlimited'")
		oelRange = flag.String("oel", "unlimited", "object export limit range min:max, or 'unlimited'")
		history  = flag.Int("history", storage.DefaultHistoryDepth, "committed writes retained per object")
		latency  = flag.Duration("latency", 0, "simulated per-operation service latency")
		seed     = flag.Int64("seed", 1, "database population seed")
		stats    = flag.Duration("stats", 0, "print engine counters every interval (0 disables)")
	)
	flag.Parse()

	oilMin, oilMax, err := parseRange(*oilRange)
	if err != nil {
		log.Fatalf("esr-server: -oil: %v", err)
	}
	oelMin, oelMax, err := parseRange(*oelRange)
	if err != nil {
		log.Fatalf("esr-server: -oel: %v", err)
	}

	store := storage.NewStore(storage.Config{HistoryDepth: *history})
	rng := rand.New(rand.NewSource(*seed))
	if err := store.Populate(*objects, *valueMin, *valueMax, oilMin, oilMax, oelMin, oelMax, rng); err != nil {
		log.Fatalf("esr-server: populate: %v", err)
	}
	col := &metrics.Collector{}
	engine := tso.NewEngine(store, tso.Options{Collector: col})
	srv := server.New(engine, server.Options{SimulatedLatency: *latency})

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("esr-server: %v", err)
	}
	log.Printf("esr-server: %d objects loaded, listening on %s", store.Len(), bound)

	if *stats > 0 {
		go func() {
			prev := col.Snapshot()
			for range time.Tick(*stats) {
				cur := col.Snapshot()
				d := cur.Sub(prev)
				prev = cur
				log.Printf("stats: %.1f txn/s, %d aborts, %d inconsistent ops, %d waits",
					float64(d.Commits)/(*stats).Seconds(), d.Aborts(), d.InconsistentOps(), d.Waits)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("esr-server: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("esr-server: close: %v", err)
	}
	s := col.Snapshot()
	fmt.Printf("total: %d commits, %d aborts, %d ops, %d inconsistent ops\n",
		s.Commits, s.Aborts(), s.TotalOps(), s.InconsistentOps())
}

// parseRange parses "min:max", a single number, or "unlimited".
func parseRange(s string) (core.Distance, core.Distance, error) {
	if strings.EqualFold(s, "unlimited") || s == "" {
		return core.NoLimit, core.NoLimit, nil
	}
	parts := strings.SplitN(s, ":", 2)
	lo, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad lower bound %q", parts[0])
	}
	hi := lo
	if len(parts) == 2 {
		hi, err = strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad upper bound %q", parts[1])
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return lo, hi, nil
}
