// Command esr-server runs the central transaction server of the
// prototype (§6): an in-memory database behind the binary wire protocol,
// with timestamp-ordered ESR concurrency control.
//
//	esr-server -addr :7400 -objects 1000 -oil 4000:16000 -oel 4000:16000
//
// The database is populated with -objects objects valued 1000–9999 (the
// paper's start-up data file); per-object OIL/OEL are drawn uniformly
// from the given min:max ranges ("the values of OIL and OEL are randomly
// generated within a specified range"). -latency adds a per-operation
// service delay to emulate the prototype's RPC cost.
//
// Observability: -debug-addr serves expvar (/debug/vars), pprof
// (/debug/pprof/) and a JSON stats view (/debug/esr) with live counters,
// the abort-reason breakdown and per-path latency percentiles; -trace
// appends every engine event to a JSONL file; -flight keeps a ring of the
// last N events and dumps it to stderr when aborts cluster.
//
// Robustness: -idle-timeout drops connections whose client goes silent
// mid-transaction (aborting their open transactions), -write-timeout
// bounds response writes, and -shutdown-grace is how long SIGINT/SIGTERM
// waits for in-flight requests to drain before cutting connections. The
// -fault-* flags (see internal/faultnet) wrap every accepted connection
// with a deterministic fault schedule — drops, added latency, partial
// reads/writes, mid-frame resets — for robustness testing against a
// live server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/faultnet"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/replica"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7400", "listen address")
		objects  = flag.Int("objects", 1000, "number of objects to load")
		valueMin = flag.Int64("value-min", 1000, "minimum initial object value")
		valueMax = flag.Int64("value-max", 9999, "maximum initial object value")
		oilRange = flag.String("oil", "unlimited", "object import limit range min:max, or 'unlimited'")
		oelRange = flag.String("oel", "unlimited", "object export limit range min:max, or 'unlimited'")
		history  = flag.Int("history", storage.DefaultHistoryDepth, "committed writes retained per object")
		latency  = flag.Duration("latency", 0, "simulated per-operation service latency")
		seed     = flag.Int64("seed", 1, "database population seed")
		stats    = flag.Duration("stats", 0, "print engine counters every interval (0 disables)")

		debugAddr = flag.String("debug-addr", "", "serve expvar, pprof and /debug/esr on this address (empty disables)")
		traceFile = flag.String("trace", "", "append engine trace events to this JSONL file")
		flightN   = flag.Int("flight", 0, "keep the last N trace events in a flight recorder, dumped on abort storms")

		idleTimeout   = flag.Duration("idle-timeout", 0, "drop connections idle this long, aborting their open txns (0 disables)")
		writeTimeout  = flag.Duration("write-timeout", 0, "bound each response write (0 disables)")
		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests to drain")

		walDir    = flag.String("wal-dir", "", "write-ahead log directory; enables durability and crash recovery (empty disables)")
		walSync   = flag.Duration("wal-sync-interval", wal.DefaultSyncInterval, "group-commit fsync interval; negative fsyncs every commit")
		snapEvery = flag.Int("snapshot-every", 0, "snapshot the store and truncate the log every N logged commits (0 disables)")

		replicaOf    = flag.String("replica-of", "", "follow the primary at this address and serve bounded-stale query reads (requires the primary to run with -wal-dir)")
		replicaIndex = flag.Int("replica-index", 0, "this replica's ordinal; namespaces its transaction ids in merged traces")
	)
	faultCfg := faultnet.RegisterFlags(flag.CommandLine, "fault")
	flag.Parse()

	if err := faultCfg.Validate(); err != nil {
		log.Fatalf("esr-server: %v", err)
	}

	oilMin, oilMax, err := parseRange(*oilRange)
	if err != nil {
		log.Fatalf("esr-server: -oil: %v", err)
	}
	oelMin, oelMax, err := parseRange(*oelRange)
	if err != nil {
		log.Fatalf("esr-server: -oel: %v", err)
	}

	col := &metrics.Collector{}
	var store *storage.Store
	var walLog *wal.Log
	switch {
	case *replicaOf != "":
		// Follower mode: the database arrives over the replication feed
		// (snapshot bootstrap + committed-write stream); nothing local to
		// recover or populate.
		if *walDir != "" {
			log.Fatalf("esr-server: -replica-of and -wal-dir are mutually exclusive; the follower's state mirrors the primary's log")
		}
	case *walDir != "":
		fs, err := wal.NewDirFS(*walDir)
		if err != nil {
			log.Fatalf("esr-server: -wal-dir: %v", err)
		}
		var info wal.RecoveryInfo
		store, walLog, info, err = wal.Recover(fs, storage.Config{HistoryDepth: *history}, wal.Options{
			SyncInterval:  *walSync,
			SnapshotEvery: *snapEvery,
			Collector:     col,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("esr-server: wal recovery: %v", err)
		}
		if info.Records > 0 || info.SnapshotLSN > 0 {
			log.Printf("esr-server: recovered %d objects from wal (snapshot lsn %d, %d records replayed, torn tail: %v)",
				store.Len(), info.SnapshotLSN, info.Records, info.TornTail)
		}
	default:
		store = storage.NewStore(storage.Config{HistoryDepth: *history})
	}
	// A recovered store is already populated; only seed a fresh one.
	// Followers have no local store to seed at all.
	if store != nil && store.Len() == 0 {
		rng := rand.New(rand.NewSource(*seed))
		if err := store.Populate(*objects, *valueMin, *valueMax, oilMin, oilMax, oelMin, oelMax, rng); err != nil {
			log.Fatalf("esr-server: populate: %v", err)
		}
	}

	var tracers tso.MultiTracer
	var sink *tso.JSONLSink
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("esr-server: -trace: %v", err)
		}
		defer f.Close()
		sink = tso.NewJSONLSink(f)
		defer sink.Flush()
		tracers = append(tracers, sink)
	}
	if *flightN > 0 {
		rec := tso.NewFlightRecorder(*flightN)
		// Dump the ring to stderr when aborts cluster: 50 within one
		// second is far beyond any healthy retry rate at these scales.
		rec.OnAbortStorm(50, time.Second, func(evs []tso.Event) {
			log.Printf("esr-server: abort storm detected, dumping last %d trace events", len(evs))
			var buf strings.Builder
			for _, ev := range evs {
				buf.Write(tso.AppendEventJSON(nil, ev))
				buf.WriteByte('\n')
			}
			os.Stderr.WriteString(buf.String())
		})
		tracers = append(tracers, rec)
	}
	var tracer tso.Tracer
	if len(tracers) == 1 {
		tracer = tracers[0]
	} else if len(tracers) > 1 {
		tracer = tracers
	}

	srvOpts := server.Options{
		SimulatedLatency: *latency,
		IdleTimeout:      *idleTimeout,
		WriteTimeout:     *writeTimeout,
	}
	var srv *server.Server
	var engine *tso.Engine
	var feed *replica.Feed
	if *replicaOf != "" {
		follower := replica.NewFollower(storage.Config{HistoryDepth: *history})
		reng := replica.NewEngine(follower, replica.Options{
			Collector: col, Tracer: tracer, Index: *replicaIndex,
		})
		primary := *replicaOf
		var err error
		feed, err = replica.StartFeed(follower, replica.FeedOptions{
			Dial: func() (net.Conn, error) { return net.Dial("tcp", primary) },
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("esr-server: replication feed: %v", err)
		}
		srv = server.NewBackend(reng, srvOpts)
		log.Printf("esr-server: following primary at %s (replica index %d)", primary, *replicaIndex)
	} else {
		opts := tso.Options{Collector: col, Tracer: tracer}
		if walLog != nil {
			opts.Durability = walLog
		}
		engine = tso.NewEngine(store, opts)
		// The feed is only offered with durability on: followers stream
		// the WAL, so a log is the price of admission for replicas.
		srvOpts.Feed = walLog
		srv = server.New(engine, srvOpts)
	}

	if *debugAddr != "" {
		if engine == nil {
			log.Printf("esr-server: -debug-addr is unavailable in replica mode; ignoring")
		} else {
			dl, err := net.Listen("tcp", *debugAddr)
			if err != nil {
				log.Fatalf("esr-server: -debug-addr: %v", err)
			}
			log.Printf("esr-server: debug endpoint on http://%s/debug/esr", dl.Addr())
			go func() {
				if err := http.Serve(dl, server.DebugMux(engine)); err != nil {
					log.Printf("esr-server: debug server: %v", err)
				}
			}()
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("esr-server: %v", err)
	}
	var faultStats *faultnet.Stats
	if faultCfg.Enabled() {
		fl := faultnet.WrapListener(l, *faultCfg, nil)
		faultStats = fl.Stats()
		l = fl
		log.Printf("esr-server: fault injection armed (seed %d)", faultCfg.Seed)
	}
	if err := srv.Serve(l); err != nil {
		log.Fatalf("esr-server: %v", err)
	}
	log.Printf("esr-server: %d objects loaded, listening on %s", srv.Backend().Store().Len(), l.Addr())

	if *stats > 0 {
		go func() {
			prev := col.Snapshot()
			for range time.Tick(*stats) {
				cur := col.Snapshot()
				d := cur.Sub(prev)
				prev = cur
				log.Printf("stats: %.1f txn/s, %d aborts, %d inconsistent ops, %d waits",
					float64(d.Commits)/(*stats).Seconds(), d.Aborts(), d.InconsistentOps(), d.Waits)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("esr-server: shutting down (grace %v)", *shutdownGrace)
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("esr-server: shutdown: %v", err)
	}
	if feed != nil {
		feed.Stop()
	}
	if walLog != nil {
		if err := walLog.Close(); err != nil {
			log.Printf("esr-server: wal close: %v", err)
		}
	}
	s := col.Snapshot()
	fmt.Printf("total: %d commits, %d aborts, %d ops, %d inconsistent ops\n",
		s.Commits, s.Aborts(), s.TotalOps(), s.InconsistentOps())
	if faultStats != nil {
		fmt.Printf("faults injected: %d delays, %d drops, %d partials, %d resets\n",
			faultStats.Delays.Load(), faultStats.Drops.Load(),
			faultStats.Partials.Load(), faultStats.Resets.Load())
	}
}

// parseRange parses "min:max", a single number, or "unlimited".
func parseRange(s string) (core.Distance, core.Distance, error) {
	if strings.EqualFold(s, "unlimited") || s == "" {
		return core.NoLimit, core.NoLimit, nil
	}
	parts := strings.SplitN(s, ":", 2)
	lo, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad lower bound %q", parts[0])
	}
	hi := lo
	if len(parts) == 2 {
		hi, err = strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad upper bound %q", parts[1])
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return lo, hi, nil
}
