// The go vet unit-at-a-time driver: cmd/go hands the tool a JSON .cfg
// file describing one package (sources, import map, export-data files)
// and expects diagnostics on stderr, an (empty, we keep no facts) .vetx
// output file, and exit status 2 when anything is reported. This is a
// stdlib-only re-implementation of the x/tools unitchecker contract.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// vetConfig mirrors the JSON written by cmd/go for vet tools. Fields the
// suite does not use (facts, fuzzing instrumentation, ...) are omitted:
// unknown JSON keys are ignored on decode.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile.
func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// cmd/go always expects the facts file to appear, even though this
	// suite records none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	info := analysis.NewInfo()
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	prog := &analysis.Program{
		Fset: fset,
		Packages: []*analysis.Package{{
			ImportPath: cfg.ImportPath,
			Dir:        cfg.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}},
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
