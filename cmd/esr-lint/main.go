// esr-lint is the repo's custom vet suite: the eight analyzers under
// internal/analysis (epsiloncheck, locksafe, wireexhaustive,
// atomicmetrics, lockorder, goleak, errprop, tracecomplete) behind two
// drivers.
//
// Standalone (what `make lint` runs):
//
//	go run ./cmd/esr-lint [-run analyzers] [-json] [packages]
//
// loads the named packages (default ./...) as one program, runs every
// analyzer — including the cross-package ones — and exits with a stable
// code: 0 clean, 1 diagnostics reported, 2 operational failure (bad
// flags, packages failed to load). -run selects a comma-separated subset
// of analyzers; -json emits machine-readable output for CI:
//
//	{"diagnostics": [{"analyzer": ..., "file": ..., "line": ...,
//	  "column": ..., "message": ...}, ...],
//	 "suppressed": [...]}   // findings waived by //lint:ignore
//
// Vettool (the `go vet` unit-at-a-time protocol):
//
//	go vet -vettool=$(which esr-lint) ./...
//
// cmd/go probes the tool with -V=full and -flags, then invokes it once
// per package with a JSON .cfg file naming the sources and export data.
// In this mode each package is checked in isolation, so program-level
// analyzers degrade to the invariants visible inside one package (wire
// checks run when vetting the wire package; the wire↔server handler
// check needs the standalone driver).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/epsilondb/epsilondb/internal/analysis"
	"github.com/epsilondb/epsilondb/internal/analysis/atomicmetrics"
	"github.com/epsilondb/epsilondb/internal/analysis/epsiloncheck"
	"github.com/epsilondb/epsilondb/internal/analysis/errprop"
	"github.com/epsilondb/epsilondb/internal/analysis/goleak"
	"github.com/epsilondb/epsilondb/internal/analysis/lockorder"
	"github.com/epsilondb/epsilondb/internal/analysis/locksafe"
	"github.com/epsilondb/epsilondb/internal/analysis/tracecomplete"
	"github.com/epsilondb/epsilondb/internal/analysis/wireexhaustive"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	epsiloncheck.Analyzer,
	locksafe.Analyzer,
	wireexhaustive.Analyzer,
	atomicmetrics.Analyzer,
	lockorder.Analyzer,
	goleak.Analyzer,
	errprop.Analyzer,
	tracecomplete.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("esr-lint: ")

	versionFlag := flag.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag definitions as JSON and exit (go vet tool protocol)")
	jsonFlag := flag.Bool("json", false, "emit machine-readable JSON diagnostics (standalone driver only)")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all; standalone driver only)")
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		// cmd/go fingerprints vettools for build caching via `-V=full`
		// and requires a buildID field on devel versions; hashing the
		// executable itself gives a stable content-derived ID, the same
		// scheme the x/tools unitchecker uses.
		self, err := os.Open(os.Args[0])
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, self); err != nil {
			log.Fatal(err)
		}
		self.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
			filepath.Base(os.Args[0]), string(h.Sum(nil)))
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	standalone(args, *runFlag, *jsonFlag)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: esr-lint [packages]  (standalone)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=esr-lint [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

// standalone loads the whole program and runs the selected analyzers
// over it. Exit codes: 0 clean, 1 findings, 2 operational failure.
func standalone(patterns []string, run string, asJSON bool) {
	selected, err := selectAnalyzers(run)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	res, err := prog.RunDetailed(selected)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if asJSON {
		if err := json.NewEncoder(os.Stdout).Encode(jsonReport(res)); err != nil {
			log.Print(err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves a -run list against the suite.
func selectAnalyzers(run string) ([]*analysis.Analyzer, error) {
	if run == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type report struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Suppressed  []jsonDiag `json:"suppressed"`
}

func jsonReport(res *analysis.Result) report {
	conv := func(in []analysis.Diagnostic) []jsonDiag {
		out := make([]jsonDiag, 0, len(in))
		for _, d := range in {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		return out
	}
	return report{Diagnostics: conv(res.Diagnostics), Suppressed: conv(res.Suppressed)}
}
