// esr-lint is the repo's custom vet suite: the four analyzers under
// internal/analysis (epsiloncheck, locksafe, wireexhaustive,
// atomicmetrics) behind two drivers.
//
// Standalone (what `make lint` runs):
//
//	go run ./cmd/esr-lint ./...
//
// loads the named packages (default ./...) as one program, runs every
// analyzer — including the cross-package ones — and exits 1 if anything
// is reported.
//
// Vettool (the `go vet` unit-at-a-time protocol):
//
//	go vet -vettool=$(which esr-lint) ./...
//
// cmd/go probes the tool with -V=full and -flags, then invokes it once
// per package with a JSON .cfg file naming the sources and export data.
// In this mode each package is checked in isolation, so program-level
// analyzers degrade to the invariants visible inside one package (wire
// checks run when vetting the wire package; the wire↔server handler
// check needs the standalone driver).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/epsilondb/epsilondb/internal/analysis"
	"github.com/epsilondb/epsilondb/internal/analysis/atomicmetrics"
	"github.com/epsilondb/epsilondb/internal/analysis/epsiloncheck"
	"github.com/epsilondb/epsilondb/internal/analysis/locksafe"
	"github.com/epsilondb/epsilondb/internal/analysis/wireexhaustive"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	epsiloncheck.Analyzer,
	locksafe.Analyzer,
	wireexhaustive.Analyzer,
	atomicmetrics.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("esr-lint: ")

	versionFlag := flag.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag definitions as JSON and exit (go vet tool protocol)")
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		// cmd/go fingerprints vettools for build caching via `-V=full`
		// and requires a buildID field on devel versions; hashing the
		// executable itself gives a stable content-derived ID, the same
		// scheme the x/tools unitchecker uses.
		self, err := os.Open(os.Args[0])
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, self); err != nil {
			log.Fatal(err)
		}
		self.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
			filepath.Base(os.Args[0]), string(h.Sum(nil)))
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	standalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: esr-lint [packages]  (standalone)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=esr-lint [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

// standalone loads the whole program and runs every analyzer over it.
func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
