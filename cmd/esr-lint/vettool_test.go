package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles esr-lint into a temp dir and returns the binary
// path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "esr-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building esr-lint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolHandshake checks the cmd/go tool-identification probes.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "esr-lint version ") {
		t.Errorf("-V=full output %q does not identify the tool", out)
	}

	out, err = exec.Command(bin, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags output %q, want []", out)
	}
}

// TestVettoolClean runs the full go vet protocol over real engine
// packages, which must lint clean.
func TestVettoolClean(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/core", "./internal/storage", "./internal/wire", "./internal/metrics")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages: %v\n%s", err, out)
	}
}

// TestVettoolReportsViolations runs go vet over the locksafe golden
// package and expects the known diagnostics and a non-zero exit.
func TestVettoolReportsViolations(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/analysis/locksafe/testdata/src/a")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on violating package succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "still locked") {
		t.Errorf("vet output missing locksafe diagnostic:\n%s", out)
	}
}
