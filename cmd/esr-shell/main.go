// Command esr-shell runs transaction scripts written in the paper's
// transaction language (§3) against an esr-server — or, with -embed,
// against an in-process engine, which is handy for trying the language
// without starting a server.
//
//	echo 'BEGIN Query TIL 10000
//	t1 = Read 17
//	t2 = Read 42
//	output("Sum is: ", t1+t2)
//	COMMIT' | esr-shell -embed -objects 100
//
//	esr-shell -addr 127.0.0.1:7400 script.txn
//
// Each file (or standard input) may hold any number of transaction
// scripts back to back — a load file in the §6 sense (esr-client
// -generate writes them); aborted scripts are resubmitted with fresh
// timestamps until they commit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnlang"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7400", "server address")
		embed   = flag.Bool("embed", false, "run against an in-process engine instead of a server")
		objects = flag.Int("objects", 1000, "objects to load in -embed mode")
		site    = flag.Int("site", 1, "client site id")
		retries = flag.Int("retries", 100, "maximum attempts per script")
	)
	flag.Parse()

	var runner txnlang.Beginner
	if *embed {
		store := storage.NewStore(storage.Config{})
		rng := rand.New(rand.NewSource(1))
		if err := store.Populate(*objects, 1000, 9999, 1<<40, 1<<40, 1<<40, 1<<40, rng); err != nil {
			log.Fatalf("esr-shell: %v", err)
		}
		runner = txnlang.EngineRunner{
			Engine: tso.NewEngine(store, tso.Options{}),
			Gen:    tsgen.NewGenerator(*site, &tsgen.LogicalClock{}),
		}
	} else {
		c, err := client.Dial(*addr, client.Options{Site: *site})
		if err != nil {
			log.Fatalf("esr-shell: %v", err)
		}
		defer c.Close()
		runner = txnlang.ClientRunner{Client: c}
	}

	sources := flag.Args()
	if len(sources) == 0 {
		sources = []string{"-"}
	}
	for _, src := range sources {
		text, err := readSource(src)
		if err != nil {
			log.Fatalf("esr-shell: %s: %v", src, err)
		}
		scripts, err := txnlang.ParseAll(text)
		if err != nil {
			log.Fatalf("esr-shell: %s: %v", src, err)
		}
		for i, script := range scripts {
			_, attempts, err := txnlang.RunRetry(script, runner, os.Stdout, *retries)
			if err != nil {
				log.Fatalf("esr-shell: %s script %d: %v", src, i+1, err)
			}
			if attempts > 1 {
				fmt.Fprintf(os.Stderr, "(%s script %d committed after %d attempts)\n", name(src), i+1, attempts)
			}
		}
	}
}

func readSource(src string) (string, error) {
	if src == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(src)
	return string(b), err
}

func name(src string) string {
	if src == "-" {
		return "stdin script"
	}
	return src
}
