// Command esr-bench reruns the paper's performance evaluation and prints
// the series behind every figure of §8 as aligned tables (and optionally
// CSV files).
//
// Usage:
//
//	esr-bench -fig all                 # every figure, virtual timeline
//	esr-bench -fig 7 -duration 2s      # throughput vs MPL, longer cells
//	esr-bench -fig 12 -csv out/        # OIL sweep, also write CSV
//	esr-bench -paper-scale             # the prototype's wall-clock RPC regime
//	esr-bench -soak                    # banking soak through a faulty network
//	esr-bench -load -pipeline 8        # open-loop load over the pipelined wire
//	esr-bench -replicas 2              # read scaling over bounded-stale followers
//
// By default cells run on a deterministic virtual timeline (noise-free
// and fast regardless of -duration); -paper-scale switches to the wall
// clock with the prototype's 11 ms network + 6 ms service per operation,
// reproducing the absolute tens-of-transactions-per-second regime.
//
// The figure sweeps are closed-loop measurements (each simulated client
// waits for its transaction before issuing the next) and are labeled as
// such. -load is the open-loop counterpart over real TCP: transaction
// arrivals follow a fixed-tick target-rate schedule (-rate; 0 means
// continuous/saturating), shipped over -conns pipelined connections at
// -pipeline depth in Batch frames of -batch ops, with latency measured
// from the scheduled arrival so queueing under load is visible. Those
// open-loop numbers are the headline throughput metric recorded in
// BENCH_hotpath.json and results/bench_trajectory.jsonl.
//
// -soak runs the robustness soak instead of a figure: a zero-sum banking
// workload over real TCP connections wrapped with the -fault-* schedule
// (see internal/faultnet), ending in a graceful server shutdown and an
// invariant check (no leaked transactions, conserved total balance).
// With no -fault-* flags set it uses the default mixed-fault schedule;
// -soak-pipeline drives it over the pipelined batched protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/experiment"
	"github.com/epsilondb/epsilondb/internal/faultnet"
	"github.com/epsilondb/epsilondb/internal/soak"
	"github.com/epsilondb/epsilondb/internal/workload"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to reproduce: 7, 8, 9, 10, 11, 12, 13, table, cc, hist, hier, or all")
		duration   = flag.Duration("duration", time.Second, "measurement window per cell")
		warmup     = flag.Duration("warmup", 200*time.Millisecond, "warmup before each measurement")
		opLatency  = flag.Duration("oplatency", time.Millisecond, "simulated per-operation server service time")
		netLatency = flag.Duration("netlatency", 0, "simulated per-operation network/client time (outside server capacity)")
		realTime   = flag.Bool("realtime", false, "run on the wall clock instead of the virtual timeline")
		paperScale = flag.Bool("paper-scale", false, "reproduce the prototype's RPC regime: 6 ms service + 11 ms network per op, wall clock")
		mplMax     = flag.Int("mpl-max", 10, "largest multiprogramming level in the MPL sweeps")
		seed       = flag.Int64("seed", 1, "workload and database seed")
		reps       = flag.Int("reps", 3, "repetitions per cell (median reported)")
		csvDir     = flag.String("csv", "", "directory to also write per-figure CSV files into")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress lines")
		seq        = flag.Bool("seq", false, "run sweep cells sequentially (disable the parallel worker pool)")
		workers    = flag.Int("workers", 0, "sweep cells to run concurrently; 0 means GOMAXPROCS")

		soakMode    = flag.Bool("soak", false, "run the fault-injection banking soak instead of a figure")
		soakClients = flag.Int("soak-clients", 0, "soak: concurrent clients (0 means default)")
		soakTxns    = flag.Int("soak-txns", 0, "soak: committed programs per client (0 means default)")
		soakPipe    = flag.Int("soak-pipeline", 0, "soak: pipeline depth per connection (<=1 means the synchronous protocol)")
		soakBatch   = flag.Int("soak-batch", 0, "soak: ops per Batch frame when pipelined (<=0 means whole program per frame)")

		loadMode    = flag.Bool("load", false, "run the open-loop load generator against a real server instead of a figure")
		rate        = flag.Float64("rate", 0, "load: target aggregate arrival rate in txn/s (0 means continuous mode: saturate the pipeline)")
		conns       = flag.Int("conns", 1, "load: client connections (1 isolates the pipelining speedup from connection parallelism)")
		pipeline    = flag.Int("pipeline", 8, "load: outstanding frames per connection (1 means the synchronous seed protocol)")
		batch       = flag.Int("batch", 0, "load: ops per Batch frame (<=0 ships each whole program in one frame, 1 means per-op frames)")
		loadOps     = flag.Int("load-ops", 16, "load: delta-write operations per transaction (rounded down to even)")
		loadObjects = flag.Int("load-objects", 32, "load: accounts per executor slice (disjoint slices keep concurrency-control conflicts out of the wire measurement)")
		loadJSON    = flag.String("load-json", "", "load: also write the report as JSON to this path (merged into BENCH_hotpath.json by scripts/bench.sh)")
		loadCertify = flag.Bool("load-certify", true, "load: record the trace and require esrcheck certification")
		replicasN     = flag.Int("replicas", 0, "run the replica read-scaling benchmark with this many bounded-stale WAL followers (0 disables)")
		replicaTIL    = flag.Int64("replica-til", 500, "replicas: import limit (TIL) of the measured queries")
		replicaQuery  = flag.Int("replica-queries", 8, "replicas: closed-loop query workers")
		replicaUpd    = flag.Int("replica-updates", 2, "replicas: concurrent zero-sum update workers on the primary")
		replicaObjs   = flag.Int("replica-objects", 64, "replicas: shared hot objects")
		replicaReads  = flag.Int("replica-reads", 4, "replicas: reads per query")
		replicaSvc    = flag.Duration("replica-service", 150*time.Microsecond, "replicas: simulated per-operation service time (per-server capacity = threads/service)")
		replicaThr    = flag.Int("replica-threads", 4, "replicas: capacity slots per server")
		replicaFloor  = flag.Float64("replica-min-scaleup", 1.7, "replicas: fail when replica/primary query throughput falls below this ratio (0 disables)")
		replicasJSON  = flag.String("replicas-json", "", "replicas: also write the report as JSON to this path (merged into BENCH_hotpath.json by scripts/bench.sh)")
	)
	faultCfg := faultnet.RegisterFlags(flag.CommandLine, "fault")
	flag.Parse()

	if *replicasN > 0 {
		err := runReplicas(replicaConfig{
			Replicas:      *replicasN,
			TIL:           core.Distance(*replicaTIL),
			Duration:      *duration,
			QueryWorkers:  *replicaQuery,
			UpdateWorkers: *replicaUpd,
			Objects:       *replicaObjs,
			ReadsPerQuery: *replicaReads,
			Service:       *replicaSvc,
			Threads:       *replicaThr,
			Seed:          *seed,
			MinScaleup:    *replicaFloor,
			JSONPath:      *replicasJSON,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esr-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *soakMode {
		if err := runSoak(*faultCfg, *soakClients, *soakTxns, *soakPipe, *soakBatch, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "esr-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *loadMode {
		err := runLoad(loadConfig{
			Rate:      *rate,
			Conns:     *conns,
			Pipeline:  *pipeline,
			Batch:     *batch,
			OpsPerTxn: *loadOps,
			Accounts:  *loadObjects,
			Duration:  *duration,
			Seed:      *seed,
			Certify:   *loadCertify,
			JSONPath:  *loadJSON,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esr-bench:", err)
			os.Exit(1)
		}
		return
	}

	switch {
	case *seq:
		experiment.SetSweepParallelism(1)
	case *realTime || *paperScale:
		// Wall-clock cells contend for real CPU time; running them
		// concurrently would perturb the latencies being measured.
		// Honour an explicit -workers, otherwise force sequential.
		if *workers > 1 {
			experiment.SetSweepParallelism(*workers)
		} else {
			experiment.SetSweepParallelism(1)
		}
	default:
		experiment.SetSweepParallelism(*workers)
	}

	if *paperScale {
		*opLatency = 6 * time.Millisecond
		*netLatency = 11 * time.Millisecond
		*realTime = true
	}
	base := experiment.DefaultConfig(workload.LevelHigh)
	base.Duration = *duration
	base.Warmup = *warmup
	base.OpLatency = *opLatency
	base.NetLatency = *netLatency
	base.RealTime = *realTime
	base.Seed = *seed
	base.Reps = *reps

	progress := func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	if *quiet {
		progress = nil
	}

	r := &runner{base: base, mplMax: *mplMax, progress: progress, csvDir: *csvDir}
	var err error
	switch strings.ToLower(*fig) {
	case "table":
		err = r.table()
	case "7", "8", "9", "10":
		err = r.mplSweep(*fig)
	case "11":
		err = r.tilSweep()
	case "12", "13":
		err = r.oilSweep(*fig)
	case "cc":
		err = r.ccAblation()
	case "hist":
		err = r.historyAblation()
	case "hier":
		err = r.hierarchyAblation()
	case "all":
		err = r.all()
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "esr-bench:", err)
		os.Exit(1)
	}
}

// runSoak drives the shared soak harness (internal/soak) from the
// command line: the same schedule a test asserts on can be rerun — and
// scaled up — against a binary.
func runSoak(faults faultnet.Config, clients, txns, pipeline, batch int, seed int64) error {
	if err := faults.Validate(); err != nil {
		return err
	}
	cfg := soak.DefaultConfig()
	cfg.Seed = seed
	if faults.Enabled() {
		cfg.Faults = faults
	}
	if clients > 0 {
		cfg.Clients = clients
	}
	if txns > 0 {
		cfg.TxnsPerClient = txns
	}
	cfg.Pipeline = pipeline
	cfg.BatchOps = batch
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
	}
	report, err := soak.Run(cfg)
	if report != nil {
		fmt.Println(report.String())
	}
	if err != nil {
		return err
	}
	return report.Err()
}

type runner struct {
	base     experiment.Config
	mplMax   int
	progress func(string)
	csvDir   string
}

// emit prints a figure and optionally writes its CSV.
func (r *runner) emit(f experiment.Figure) error {
	if err := experiment.WriteTable(os.Stdout, f); err != nil {
		return err
	}
	fmt.Println()
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(r.csvDir, f.ID+".csv")
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return experiment.WriteCSV(file, f)
}

// emitCells prints the per-cell JSON records accompanying a figure (one
// object per line: counters, abort mix, p50/p95/p99 latencies) and, with
// -csv, also writes them to <dir>/<figID>-cells.jsonl.
func (r *runner) emitCells(figID string, results []experiment.Result) error {
	if len(results) == 0 {
		return nil
	}
	if err := experiment.WriteCellsJSON(os.Stdout, figID, results); err != nil {
		return err
	}
	fmt.Println()
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(r.csvDir, figID+"-cells.jsonl"))
	if err != nil {
		return err
	}
	defer file.Close()
	return experiment.WriteCellsJSON(file, figID, results)
}

func (r *runner) mpls() []int {
	out := make([]int, 0, r.mplMax)
	for i := 1; i <= r.mplMax; i++ {
		out = append(out, i)
	}
	return out
}

func (r *runner) table() error {
	return r.emit(experiment.BoundLevelsTable())
}

// mplSweep runs the first test set and prints the requested figure(s).
func (r *runner) mplSweep(which string) error {
	s, err := experiment.RunMPLSweep(r.base, r.mpls(), workload.Levels(), r.progress)
	if err != nil {
		return err
	}
	return r.emitMPL(s, which)
}

func (r *runner) emitMPL(s *experiment.MPLSweep, which string) error {
	figs := map[string]experiment.Figure{
		"7": s.Figure7(), "8": s.Figure8(), "9": s.Figure9(), "10": s.Figure10(),
	}
	if which != "all" {
		if err := r.emit(figs[which]); err != nil {
			return err
		}
		return r.emitCells("fig"+which, s.AllResults())
	}
	for _, id := range []string{"7", "8", "9", "10"} {
		if err := r.emit(figs[id]); err != nil {
			return err
		}
	}
	for i, level := range s.Levels {
		fmt.Printf("thrashing point (%s): MPL %d\n", level.Name, s.ThrashingPoint(i))
	}
	fmt.Println()
	return r.emitCells("fig7-10", s.AllResults())
}

func (r *runner) tilSweep() error {
	f, results, err := experiment.RunTILSweep(r.base, 4, tilAxis(), telLevels(), r.progress)
	if err != nil {
		return err
	}
	if err := r.emit(f); err != nil {
		return err
	}
	return r.emitCells(f.ID, results)
}

func (r *runner) oilSweep(which string) error {
	s, err := experiment.RunOILSweep(r.base, 4, oilAxis(), tilLevels(), r.progress)
	if err != nil {
		return err
	}
	if which == "12" || which == "all" {
		if err := r.emit(s.Figure12()); err != nil {
			return err
		}
	}
	if which == "13" || which == "all" {
		if err := r.emit(s.Figure13()); err != nil {
			return err
		}
	}
	return r.emitCells("fig12-13", s.AllResults())
}

func (r *runner) all() error {
	if err := r.table(); err != nil {
		return err
	}
	s, err := experiment.RunMPLSweep(r.base, r.mpls(), workload.Levels(), r.progress)
	if err != nil {
		return err
	}
	if err := r.emitMPL(s, "all"); err != nil {
		return err
	}
	if err := r.tilSweep(); err != nil {
		return err
	}
	if err := r.oilSweep("all"); err != nil {
		return err
	}
	if err := r.ccAblation(); err != nil {
		return err
	}
	if err := r.historyAblation(); err != nil {
		return err
	}
	return r.hierarchyAblation()
}

// tilAxis is the Figure 11 x axis: TIL from SR to beyond the paper's
// high level.
func tilAxis() []core.Distance {
	return []core.Distance{0, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000}
}

// telLevels holds TEL at the paper's three levels for Figure 11.
func telLevels() []core.Distance { return []core.Distance{1_000, 5_000, 10_000} }

// tilLevels holds TIL at the paper's three levels for Figures 12–13.
func tilLevels() []core.Distance { return []core.Distance{10_000, 50_000, 100_000} }

// oilAxis is the Figure 12/13 x axis: OIL in units of w.
func oilAxis() []float64 { return []float64{0, 0.5, 1, 2, 4, 8, 16, 32, 64} }
