package main

import (
	"github.com/epsilondb/epsilondb/internal/experiment"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// ccAblation compares the ESR-TO engine against the serializable
// baselines (strict 2PL, MVTO) across multiprogramming levels.
func (r *runner) ccAblation() error {
	protocols := []experiment.Protocol{
		experiment.ProtocolTO, experiment.ProtocolTwoPL, experiment.ProtocolMVTO,
	}
	f, results, err := experiment.RunCCComparison(r.base, r.mpls(), workload.LevelHigh, protocols, r.progress)
	if err != nil {
		return err
	}
	if err := r.emit(f); err != nil {
		return err
	}
	return r.emitCells(f.ID, results)
}

// historyAblation sweeps the per-object write-history depth K.
func (r *runner) historyAblation() error {
	f, results, err := experiment.RunHistoryAblation(r.base, []int{1, 5, 20, 100}, r.progress)
	if err != nil {
		return err
	}
	if err := r.emit(f); err != nil {
		return err
	}
	return r.emitCells(f.ID, results)
}

// hierarchyAblation measures the bottom-up control cost by depth.
func (r *runner) hierarchyAblation() error {
	f, err := experiment.RunHierarchyOverhead([]int{1, 2, 3, 4, 6, 8}, 0)
	if err != nil {
		return err
	}
	return r.emit(f)
}
