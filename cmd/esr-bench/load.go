package main

// The open-loop load generator (-load): a sigclient-style target-rate
// driver for the pipelined wire protocol, measuring throughput and
// latency-under-load against a real server over localhost TCP.
//
// Two phases run against one freshly booted server:
//
//  1. a closed-loop baseline — one connection, one outstanding request,
//     the seed protocol — relabeled explicitly so its numbers are never
//     conflated with open-loop results in the trajectory file;
//  2. the open-loop phase (the headline): -conns connections each
//     dialed at -pipeline depth, programs shipped in Batch frames of
//     -batch ops. With -rate > 0 transaction arrivals follow a fixed-
//     tick schedule independent of completions (latency is measured
//     from the *scheduled* arrival, so queueing delay — the part
//     coordinated-omission hides — is in the histogram); -rate 0 is
//     continuous mode, saturating the pipeline back to back.
//
// The workload is the soak harness's invariant core: zero-sum delta
// transfers, so the run can end with a conservation check, and — with
// certification on — a full trace for the offline epsilon-
// serializability oracle. A dirty certification fails the run, which is
// how scripts/bench.sh gates CI.
//
// Each executor transfers within its own disjoint account slice: this
// tool measures the wire protocol's capacity, so concurrency-control
// conflicts — whose cost depends on timestamp interleaving, not on
// pipelining — are designed out rather than averaged in. The figure
// sweeps (-fig) are the contention studies.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// loadConfig parameterizes one -load run.
type loadConfig struct {
	Rate      float64 // target aggregate txn/s; 0 means continuous
	Conns     int
	Pipeline  int
	Batch     int // ops per Batch frame; <= 0 ships whole programs
	OpsPerTxn int
	Accounts  int // accounts per executor slice
	Duration  time.Duration
	Seed      int64
	Certify   bool
	JSONPath  string
}

// loadInitialBalance keeps deltas comfortably away from zero.
const loadInitialBalance = core.Value(1_000_000)

// phaseResult is one phase's measurement.
type phaseResult struct {
	Mode     string  `json:"mode"` // "closed-loop", "scheduled", "continuous"
	Conns    int     `json:"conns"`
	Pipeline int     `json:"pipeline"`
	Batch    int     `json:"batch,omitempty"`
	RateTgt  float64 `json:"rate_target_txn_s,omitempty"`
	Txns     int64   `json:"txns"`
	Attempts int64   `json:"attempts"`
	TxnPerS  float64 `json:"txn_per_s"`
	OpPerS   float64 `json:"op_per_s"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	// BehindSchedule counts scheduled arrivals the dispatcher emitted
	// more than one tick late: the fixed-tick scheduler fell behind wall
	// clock, so the latency histogram includes real schedule slip. A
	// nonzero count flags a run whose target rate exceeded the machine.
	BehindSchedule int64 `json:"behind_schedule,omitempty"`
	// ClampedLatencies counts latency samples that came out negative
	// (a scheduled arrival later than its completion observation, which
	// only a clock anomaly can produce) and were clamped to zero instead
	// of silently deflating the percentiles.
	ClampedLatencies int64 `json:"clamped_negative_latencies,omitempty"`
}

// loadReport is the JSON artifact scripts/bench.sh merges into
// BENCH_hotpath.json (key "loadgen") and the trajectory file. The open-
// loop phase is the headline; the closed-loop baseline is kept, clearly
// relabeled, for comparison across commits.
type loadReport struct {
	OpenLoop   phaseResult `json:"open_loop"`
	ClosedLoop phaseResult `json:"closed_loop"`
	SpeedupOps float64     `json:"speedup_ops"`
	OpsPerTxn  int         `json:"ops_per_txn"`
	Certified  bool        `json:"certified"`
	Conserved  bool        `json:"conserved"`
}

// runLoad boots the server, runs both phases, checks conservation and
// (optionally) certifies the recorded history. A violated invariant is
// an error after the report is printed and written, so CI fails loudly
// with the numbers still on record.
func runLoad(cfg loadConfig) error {
	if cfg.Conns <= 0 || cfg.Pipeline <= 0 || cfg.OpsPerTxn < 2 || cfg.Accounts < cfg.OpsPerTxn {
		return fmt.Errorf("load: need ≥1 conn, ≥1 pipeline, ≥2 ops/txn, and accounts ≥ ops/txn (one write per object per txn); got %+v", cfg)
	}

	// One slice per open-phase executor, plus slice 0 for the closed-
	// loop baseline.
	totalAccounts := (1 + cfg.Conns*cfg.Pipeline) * cfg.Accounts
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= totalAccounts; i++ {
		if _, err := st.Create(core.ObjectID(i), loadInitialBalance); err != nil {
			return err
		}
	}
	opts := tso.Options{Collector: &metrics.Collector{}}
	var rec *history.Recorder
	if cfg.Certify {
		rec = history.NewRecorder()
		opts.Tracer = rec
	}
	engine := tso.NewEngine(st, opts)
	clock := &tsgen.LogicalClock{}
	srv := server.New(engine, server.Options{Clock: clock})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	closed, err := runClosedPhase(addr.String(), clock, cfg)
	if err != nil {
		return fmt.Errorf("load: closed-loop baseline: %w", err)
	}
	open, err := runOpenPhase(addr.String(), clock, cfg)
	if err != nil {
		return fmt.Errorf("load: open-loop phase: %w", err)
	}

	// Drain gracefully before judging the trace, so every connection
	// goroutine has flushed its last events into the recorder.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("load: shutdown: %w", err)
	}

	report := loadReport{
		OpenLoop:   *open,
		ClosedLoop: *closed,
		OpsPerTxn:  cfg.OpsPerTxn,
		Conserved:  st.TotalValue() == core.Value(totalAccounts)*loadInitialBalance,
		Certified:  true, // until the oracle says otherwise
	}
	if closed.OpPerS > 0 {
		report.SpeedupOps = open.OpPerS / closed.OpPerS
	}
	var oracle *esrcheck.Report
	if rec != nil {
		oracle = esrcheck.Check(rec.Events())
		report.Certified = oracle.Err() == nil
	}

	printLoadReport(report, oracle)
	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", cfg.JSONPath)
	}

	switch {
	case !report.Conserved:
		return fmt.Errorf("load: conservation violated: total %d, want %d",
			st.TotalValue(), core.Value(totalAccounts)*loadInitialBalance)
	case !report.Certified:
		return fmt.Errorf("load: history refuted: %w", oracle.Err())
	}
	return nil
}

// printLoadReport renders the run for the command line, open-loop
// numbers first: the closed-loop line is the relabeled legacy metric.
func printLoadReport(r loadReport, oracle *esrcheck.Report) {
	mode := r.OpenLoop.Mode
	if r.OpenLoop.RateTgt > 0 {
		mode = fmt.Sprintf("%s @ %.0f txn/s target", mode, r.OpenLoop.RateTgt)
	}
	fmt.Printf("open-loop (headline): %.0f txn/s, %.0f op/s — %d conns × pipeline %d, %s; latency p50 %.0fµs p95 %.0fµs p99 %.0fµs\n",
		r.OpenLoop.TxnPerS, r.OpenLoop.OpPerS, r.OpenLoop.Conns, r.OpenLoop.Pipeline, mode,
		r.OpenLoop.P50us, r.OpenLoop.P95us, r.OpenLoop.P99us)
	if r.OpenLoop.BehindSchedule > 0 || r.OpenLoop.ClampedLatencies > 0 {
		fmt.Printf("  schedule slip: %d arrivals emitted more than a tick late, %d negative latencies clamped\n",
			r.OpenLoop.BehindSchedule, r.OpenLoop.ClampedLatencies)
	}
	fmt.Printf("closed-loop baseline (legacy metric; 1 conn, 1 outstanding): %.0f txn/s, %.0f op/s; p50 %.0fµs p95 %.0fµs p99 %.0fµs\n",
		r.ClosedLoop.TxnPerS, r.ClosedLoop.OpPerS,
		r.ClosedLoop.P50us, r.ClosedLoop.P95us, r.ClosedLoop.P99us)
	fmt.Printf("speedup: %.1f× op/s over the closed-loop single connection (%d ops/txn)\n",
		r.SpeedupOps, r.OpsPerTxn)
	switch {
	case oracle != nil:
		fmt.Printf("certified: %v (%d txns checked), balance conserved: %v\n",
			r.Certified, oracle.Txns, r.Conserved)
	default:
		fmt.Printf("certified: skipped, balance conserved: %v\n", r.Conserved)
	}
}

// runClosedPhase measures the seed protocol: one connection, one
// outstanding request, per-op round trips.
func runClosedPhase(addr string, clock *tsgen.LogicalClock, cfg loadConfig) (*phaseResult, error) {
	c, err := client.Dial(addr, client.Options{Site: 1, Clock: clock})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(cfg.Seed))
	hist := &metrics.Histogram{}
	var txns, attempts int64
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for time.Now().Before(deadline) {
		p := transferProgram(rng, 0, cfg.Accounts, cfg.OpsPerTxn)
		t0 := time.Now()
		_, a, err := c.RunRetry(p, 0)
		attempts += int64(a)
		if err != nil {
			return nil, err
		}
		hist.ObserveDuration(time.Since(t0))
		txns++
	}
	res := summarize("closed-loop", txns, attempts, time.Since(start), hist, cfg)
	res.Conns, res.Pipeline, res.Batch, res.RateTgt = 1, 1, 0, 0
	return res, nil
}

// runOpenPhase measures the pipelined protocol: cfg.Conns connections at
// cfg.Pipeline depth, each connection served by Pipeline executor
// goroutines sharing the demultiplexing client, programs shipped in
// Batch frames. With a target rate, per-connection dispatchers emit
// arrivals on the fixed-tick schedule and executors drain them; the
// arrival channel is sized for the whole run so the generator never
// blocks on a slow server — that pressure lands in the latency numbers
// instead, which is the point of an open loop.
func runOpenPhase(addr string, clock *tsgen.LogicalClock, cfg loadConfig) (*phaseResult, error) {
	clients := make([]*client.Client, cfg.Conns)
	for i := range clients {
		c, err := client.Dial(addr, client.Options{
			Site:     2 + i, // distinct from the closed-loop phase's site 1
			Clock:    clock,
			Pipeline: cfg.Pipeline,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		clients[i] = c
	}

	hist := &metrics.Histogram{}
	var txns, attempts atomic.Int64
	var behind, clamped atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) { firstErr.CompareAndSwap(nil, err) }

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := range clients {
		c := clients[w]
		var arrivals chan time.Time
		if cfg.Rate > 0 {
			perConn := cfg.Rate / float64(cfg.Conns)
			interval := time.Duration(float64(time.Second) / perConn)
			expected := int(perConn*cfg.Duration.Seconds()) + 16
			arrivals = make(chan time.Time, expected)
			wg.Add(1)
			go func(offset time.Duration) {
				defer wg.Done()
				defer close(arrivals)
				// Fixed-tick schedule: arrival n is due at start+offset+n·interval
				// regardless of completions; wake, then emit every arrival now due.
				next := start.Add(offset)
				for next.Before(deadline) {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					for now := time.Now(); !next.After(now) && next.Before(deadline); next = next.Add(interval) {
						if now.Sub(next) > interval {
							// This arrival is more than a full tick overdue:
							// the scheduler is behind wall clock, not merely
							// waking on time for a due tick.
							behind.Add(1)
						}
						select {
						case arrivals <- next:
						default:
							// Sized for the whole run; overflow means the run is
							// longer than planned — count the arrival as due now
							// rather than stalling the schedule.
							arrivals <- next
						}
					}
				}
			}(time.Duration(w) * time.Millisecond)
		}
		for e := 0; e < cfg.Pipeline; e++ {
			wg.Add(1)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + int64(e+1)*104729))
			// Slice 0 belongs to the closed-loop baseline; executor
			// (w,e) transfers only within slice 1+w·Pipeline+e.
			base := (1 + w*cfg.Pipeline + e) * cfg.Accounts
			go func() {
				defer wg.Done()
				for {
					sched := time.Now()
					if arrivals != nil {
						var ok bool
						if sched, ok = <-arrivals; !ok {
							return
						}
					} else if !sched.Before(deadline) {
						return
					}
					p := transferProgram(rng, base, cfg.Accounts, cfg.OpsPerTxn)
					_, a, err := c.RunRetryBatched(p, cfg.Batch, 0)
					attempts.Add(int64(a))
					if err != nil {
						fail(err)
						return
					}
					// Latency from the scheduled arrival: queueing delay behind
					// a saturated pipeline is part of the number. A negative
					// delta (clock anomaly) is clamped and counted rather
					// than deflating the percentiles.
					lat := time.Since(sched)
					if lat < 0 {
						clamped.Add(1)
						lat = 0
					}
					hist.ObserveDuration(lat)
					txns.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	mode := "continuous"
	if cfg.Rate > 0 {
		mode = "scheduled"
	}
	res := summarize(mode, txns.Load(), attempts.Load(), time.Since(start), hist, cfg)
	res.Conns, res.Pipeline, res.Batch, res.RateTgt = cfg.Conns, cfg.Pipeline, cfg.Batch, cfg.Rate
	res.BehindSchedule, res.ClampedLatencies = behind.Load(), clamped.Load()
	return res, nil
}

// summarize folds one phase's counters and histogram into a result.
func summarize(mode string, txns, attempts int64, elapsed time.Duration, hist *metrics.Histogram, cfg loadConfig) *phaseResult {
	s := hist.Snapshot()
	secs := elapsed.Seconds()
	us := func(q float64) float64 { return float64(s.Quantile(q)) / 1e3 }
	return &phaseResult{
		Mode:     mode,
		Txns:     txns,
		Attempts: attempts,
		TxnPerS:  float64(txns) / secs,
		OpPerS:   float64(txns) * float64(cfg.OpsPerTxn) / secs,
		P50us:    us(0.50),
		P95us:    us(0.95),
		P99us:    us(0.99),
	}
}

// transferProgram builds one zero-sum update: opsPerTxn delta writes in
// +/- pairs over distinct accounts drawn from the executor's slice
// (objects base+1..base+accounts; odd op counts round down), so any
// interleaving — including at-least-once resubmission — conserves the
// bank's total. Accounts within one program are all distinct: the
// engine's one-write-per-object rule (§3.2.1) aborts a transaction that
// writes an object twice, and RunRetry would resubmit the same
// malformed program forever.
func transferProgram(rng *rand.Rand, base, accounts, opsPerTxn int) *core.Program {
	perm := rng.Perm(accounts)
	p := core.NewUpdate(core.NoLimit)
	for i := 0; i+1 < opsPerTxn && i+1 < len(perm); i += 2 {
		from := core.ObjectID(base + 1 + perm[i])
		to := core.ObjectID(base + 1 + perm[i+1])
		amount := core.Value(1 + rng.Intn(100))
		p.WriteDelta(from, -amount).WriteDelta(to, amount)
	}
	return p
}
