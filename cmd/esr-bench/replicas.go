package main

// The replica read-scaling benchmark (-replicas N): one durable primary
// plus N bounded-stale followers fed over the real replication wire
// (wal tail → wire.ReplicaHello/ReplicaRecords → replica.Feed), with a
// steady zero-sum update load on the primary and a closed-loop query
// load measured twice — first pinned to the primary alone, then spread
// across the followers — to record read throughput vs replica count at
// a fixed TIL.
//
// Each server models the paper's fixed-capacity machine: a semaphore of
// -replica-threads slots where every data operation occupies one slot
// for -replica-service. Queries on the primary share its slots with the
// update load; queries on followers spend follower slots, which is
// exactly the capacity argument for epsilon-priced read replicas. The
// scaling ratio is therefore a property of the capacity model, not of
// scheduler luck, and the run fails below -replica-min-scaleup.
//
// The run ends with the full acceptance gate: conservation of the
// bank's total on the primary, zero-epsilon queries verifiably redirected
// (replica read counters unchanged), and the merged primary+replica
// trace certified by the esrcheck oracle.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/replica"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

// replicaConfig parameterizes one -replicas run.
type replicaConfig struct {
	Replicas      int
	TIL           core.Distance // import limit of the measured queries
	Duration      time.Duration // per measurement phase
	QueryWorkers  int
	UpdateWorkers int
	Objects       int
	ReadsPerQuery int
	Service       time.Duration // simulated per-operation service time
	Threads       int           // capacity slots per server
	Seed          int64
	MinScaleup    float64 // fail below this replica/primary ratio; 0 disables
	JSONPath      string
}

const replicaInitialBalance = core.Value(1_000_000)

// replicaReport is the JSON artifact merged into BENCH_hotpath.json
// under the "replica_scaling" key and the trajectory file.
type replicaReport struct {
	Replicas       int     `json:"replicas"`
	TIL            int64   `json:"til"`
	PrimaryQPS     float64 `json:"primary_only_query_per_s"`
	ReplicaQPS     float64 `json:"replica_query_per_s"`
	Scaleup        float64 `json:"scaleup"`
	PrimaryCommits int64   `json:"primary_phase_commits"`
	ReplicaCommits int64   `json:"replica_phase_commits"`
	QueryAborts    int64   `json:"query_aborts"`
	UpdateCommits  int64   `json:"update_commits"`
	ReplicaReads   int64   `json:"replica_reads_served"`
	LagImported    int64   `json:"lag_inconsistency_imported"`
	RelaxedReads   int64   `json:"relaxed_reads"`
	ZeroEpsPrimary bool    `json:"zero_epsilon_primary_only"`
	Certified      bool    `json:"certified"`
	Conserved      bool    `json:"conserved"`
}

// capacityGate is one server's shared operation capacity.
type capacityGate chan struct{}

// serve occupies one slot for the configured service time.
func (g capacityGate) serve(d time.Duration) {
	g <- struct{}{}
	if d > 0 {
		time.Sleep(d)
	}
	<-g
}

// replicaNode bundles one follower's data plane, engine, feed, trace
// recorder and capacity gate.
type replicaNode struct {
	f    *replica.Follower
	eng  *replica.Engine
	feed *replica.Feed
	rec  *history.Recorder
	gate capacityGate
}

// runReplicas builds the cluster, runs both measurement phases, checks
// the acceptance gate, and writes the report.
func runReplicas(cfg replicaConfig) error {
	if cfg.Replicas < 1 || cfg.Objects < 2 || cfg.ReadsPerQuery < 1 || cfg.Threads < 1 {
		return fmt.Errorf("replicas: need ≥1 replica, ≥2 objects, ≥1 read/query, ≥1 thread; got %+v", cfg)
	}

	// Primary: durable store over an in-memory WAL so the feed has a log
	// to tail, creations logged after SetDurability so followers can
	// rebuild the database from the stream alone.
	store := storage.NewStore(storage.Config{HistoryDepth: 16})
	l, err := wal.Open(wal.NewMemFS(), store, wal.Options{SyncInterval: 200 * time.Microsecond})
	if err != nil {
		return err
	}
	defer func() {
		if err := l.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "replicas: wal close: %v\n", err)
		}
	}()
	store.SetDurability(l)
	primRec := history.NewRecorder()
	eng := tso.NewEngine(store, tso.Options{Durability: l, Tracer: primRec, Collector: &metrics.Collector{}})
	for i := 1; i <= cfg.Objects; i++ {
		if _, err := store.CreateWithLimits(core.ObjectID(i), replicaInitialBalance, core.NoLimit, core.NoLimit); err != nil {
			return err
		}
	}

	clock := &tsgen.LogicalClock{}
	srv := server.New(eng, server.Options{Clock: clock, Feed: l})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	// Followers, each fed over its own TCP replication connection.
	nodes := make([]*replicaNode, cfg.Replicas)
	for i := range nodes {
		n := &replicaNode{
			f:    replica.NewFollower(storage.Config{HistoryDepth: 16}),
			rec:  history.NewRecorder(),
			gate: make(capacityGate, cfg.Threads),
		}
		n.eng = replica.NewEngine(n.f, replica.Options{
			Collector: &metrics.Collector{}, Tracer: n.rec, Index: i,
		})
		n.feed, err = replica.StartFeed(n.f, replica.FeedOptions{
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr.String()) },
		})
		if err != nil {
			return err
		}
		defer n.feed.Stop()
		nodes[i] = n
	}
	if err := waitCaughtUp(nodes, l, 5*time.Second); err != nil {
		return err
	}

	primGate := make(capacityGate, cfg.Threads)
	var updateCommits, queryAborts atomic.Int64

	// The steady update load on the primary: zero-sum delta transfers
	// over the shared object set, running through both phases so the
	// followers always have fresh lag to price.
	stopUpdates := make(chan struct{})
	var updWG sync.WaitGroup
	for u := 0; u < cfg.UpdateWorkers; u++ {
		updWG.Add(1)
		gen := tsgen.NewGenerator(100+u, clock)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*7919))
		go func() {
			defer updWG.Done()
			for {
				select {
				case <-stopUpdates:
					return
				default:
				}
				if runUpdate(eng, primGate, gen, rng, cfg) == nil {
					updateCommits.Add(1)
				}
			}
		}()
	}

	// Phase 1: every query pinned to the primary, sharing its capacity
	// with the update load — the single-primary baseline.
	primary := make([]server.Backend, cfg.QueryWorkers)
	primaryGates := make([]capacityGate, cfg.QueryWorkers)
	for i := range primary {
		primary[i], primaryGates[i] = eng, primGate
	}
	primCommits := runQueryPhase(primary, primaryGates, clock, &queryAborts, cfg, 0)

	// Phase 2: queries round-robin across the followers; the primary's
	// slots now serve only updates.
	spread := make([]server.Backend, cfg.QueryWorkers)
	spreadGates := make([]capacityGate, cfg.QueryWorkers)
	for i := range spread {
		n := nodes[i%len(nodes)]
		spread[i], spreadGates[i] = n.eng, n.gate
	}
	replCommits := runQueryPhase(spread, spreadGates, clock, &queryAborts, cfg, 1000)

	close(stopUpdates)
	updWG.Wait()

	// Zero-epsilon round: every follower must refuse with a typed
	// redirect and serve nothing; the primary serves the query instead.
	zeroEpsOK, err := verifyZeroEpsilon(eng, nodes, clock, cfg)
	if err != nil {
		return err
	}

	// Let the followers drain to the primary head before judging, then
	// stop the feeds and shut the server down cleanly.
	waitCaughtUp(nodes, l, 2*time.Second) //nolint:errcheck // best-effort drain
	for _, n := range nodes {
		n.feed.Stop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("replicas: shutdown: %w", err)
	}

	merged := primRec.Events()
	var replicaReads, lagImported int64
	for _, n := range nodes {
		merged = append(merged, n.rec.Events()...)
		replicaReads += n.eng.ReadsServed()
		lagImported += int64(n.eng.ImportedTotal())
	}
	oracle := esrcheck.Check(merged)

	secs := cfg.Duration.Seconds()
	report := replicaReport{
		Replicas:       cfg.Replicas,
		TIL:            int64(cfg.TIL),
		PrimaryQPS:     float64(primCommits) / secs,
		ReplicaQPS:     float64(replCommits) / secs,
		PrimaryCommits: primCommits,
		ReplicaCommits: replCommits,
		QueryAborts:    queryAborts.Load(),
		UpdateCommits:  updateCommits.Load(),
		ReplicaReads:   replicaReads,
		LagImported:    lagImported,
		RelaxedReads:   int64(oracle.RelaxedReads),
		ZeroEpsPrimary: zeroEpsOK,
		Certified:      oracle.Err() == nil,
		Conserved:      store.TotalValue() == core.Value(cfg.Objects)*replicaInitialBalance,
	}
	if report.PrimaryQPS > 0 {
		report.Scaleup = report.ReplicaQPS / report.PrimaryQPS
	}

	fmt.Printf("replica scaling: %d followers at TIL %d — primary-only %.0f q/s, replicas %.0f q/s (%.2f×)\n",
		report.Replicas, report.TIL, report.PrimaryQPS, report.ReplicaQPS, report.Scaleup)
	fmt.Printf("  replica reads served: %d, lag inconsistency imported: %d, relaxed reads in trace: %d, query aborts: %d, update commits: %d\n",
		report.ReplicaReads, report.LagImported, report.RelaxedReads, report.QueryAborts, report.UpdateCommits)
	fmt.Printf("  zero-epsilon primary-only: %v, certified: %v (%d txns), conserved: %v\n",
		report.ZeroEpsPrimary, report.Certified, oracle.Txns, report.Conserved)

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", cfg.JSONPath)
	}

	switch {
	case !report.Conserved:
		return fmt.Errorf("replicas: conservation violated: total %d, want %d",
			store.TotalValue(), core.Value(cfg.Objects)*replicaInitialBalance)
	case !report.Certified:
		return fmt.Errorf("replicas: merged trace refuted: %w", oracle.Err())
	case !report.ZeroEpsPrimary:
		return errors.New("replicas: a zero-epsilon query touched a follower")
	case cfg.MinScaleup > 0 && report.Scaleup < cfg.MinScaleup:
		return fmt.Errorf("replicas: scaleup %.2f× below the %.2f× floor", report.Scaleup, cfg.MinScaleup)
	}
	return nil
}

// waitCaughtUp polls until every follower has applied the primary's
// current head.
func waitCaughtUp(nodes []*replicaNode, l *wal.Log, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		head := l.Head()
		caught := true
		for _, n := range nodes {
			if n.f.AppliedLSN() < head {
				caught = false
				break
			}
		}
		if caught {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas: followers did not catch up to lsn %d within %v", head, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// runUpdate commits one zero-sum transfer on the primary, spending two
// capacity slots.
func runUpdate(eng *tso.Engine, gate capacityGate, gen *tsgen.Generator, rng *rand.Rand, cfg replicaConfig) error {
	from := core.ObjectID(1 + rng.Intn(cfg.Objects))
	to := core.ObjectID(1 + rng.Intn(cfg.Objects))
	for to == from {
		to = core.ObjectID(1 + rng.Intn(cfg.Objects))
	}
	amount := core.Value(1 + rng.Intn(50))
	txn, err := eng.Begin(core.Update, gen.Next(), core.UnboundedSpec())
	if err != nil {
		return err
	}
	gate.serve(cfg.Service)
	if _, err := eng.WriteDelta(txn, from, -amount); err != nil {
		return abortUnlessAborted(eng, txn, err)
	}
	gate.serve(cfg.Service)
	if _, err := eng.WriteDelta(txn, to, amount); err != nil {
		return abortUnlessAborted(eng, txn, err)
	}
	return eng.Commit(txn)
}

// runQueryPhase runs the closed-loop query workers for one phase, each
// worker pinned to one backend, and returns the committed-query count.
// siteBase keeps the two phases' generator sites distinct.
func runQueryPhase(backends []server.Backend, gates []capacityGate, clock tsgen.Clock,
	aborts *atomic.Int64, cfg replicaConfig, siteBase int) int64 {
	var commits atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := range backends {
		wg.Add(1)
		be, gate := backends[w], gates[w]
		gen := tsgen.NewGenerator(200+siteBase+w, clock)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(siteBase+w)*104729 + 13))
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch err := runQuery(be, gate, gen, rng, cfg); {
				case err == nil:
					commits.Add(1)
				default:
					aborts.Add(1)
				}
			}
		}()
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	return commits.Load()
}

// runQuery executes one bounded-inconsistency query against a backend,
// spending one capacity slot per read.
func runQuery(be server.Backend, gate capacityGate, gen *tsgen.Generator, rng *rand.Rand, cfg replicaConfig) error {
	txn, err := be.Begin(core.Query, gen.Next(), core.BoundSpec{Transaction: cfg.TIL})
	if err != nil {
		return err
	}
	for j := 0; j < cfg.ReadsPerQuery; j++ {
		obj := core.ObjectID(1 + rng.Intn(cfg.Objects))
		gate.serve(cfg.Service)
		if _, err := be.Read(txn, obj); err != nil {
			return abortUnlessAborted(be, txn, err)
		}
	}
	return be.Commit(txn)
}

// abortUnlessAborted cleans up a failed attempt unless the engine
// already aborted it internally, and propagates the original error.
func abortUnlessAborted(be server.Backend, txn core.TxnID, err error) error {
	var ae *tso.AbortError
	if !errors.As(err, &ae) {
		_ = be.Abort(txn)
	}
	return err
}

// verifyZeroEpsilon checks that TIL-0 queries never touch a follower:
// every follower refuses Begin with a typed redirect and serves no read
// for it, and the primary answers the same query.
func verifyZeroEpsilon(eng *tso.Engine, nodes []*replicaNode, clock tsgen.Clock, cfg replicaConfig) (bool, error) {
	gen := tsgen.NewGenerator(99, clock)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	before := make([]int64, len(nodes))
	for i, n := range nodes {
		before[i] = n.eng.ReadsServed()
	}
	for round := 0; round < 16; round++ {
		for _, n := range nodes {
			_, err := n.eng.Begin(core.Query, gen.Next(), core.SRSpec())
			var re *replica.RedirectError
			if !errors.As(err, &re) {
				return false, fmt.Errorf("replicas: zero-epsilon Begin on a follower returned %v, want a redirect", err)
			}
		}
		// The primary serves the redirected query.
		txn, err := eng.Begin(core.Query, gen.Next(), core.SRSpec())
		if err != nil {
			return false, fmt.Errorf("replicas: zero-epsilon Begin on the primary: %w", err)
		}
		obj := core.ObjectID(1 + rng.Intn(cfg.Objects))
		if _, err := eng.Read(txn, obj); err != nil {
			return false, fmt.Errorf("replicas: zero-epsilon read on the primary: %w", err)
		}
		if err := eng.Commit(txn); err != nil {
			return false, fmt.Errorf("replicas: zero-epsilon commit on the primary: %w", err)
		}
	}
	for i, n := range nodes {
		if n.eng.ReadsServed() != before[i] {
			return false, nil
		}
	}
	return true, nil
}
