// Package epsilondb is a from-scratch Go reproduction of Kamath &
// Ramamritham, "Performance Characteristics of Epsilon Serializability
// with Hierarchical Inconsistency Bounds" (ICDE 1993): an epsilon-
// serializability transaction processing system built on timestamp-
// ordering concurrency control, with hierarchical inconsistency bounds,
// a client-server prototype, and the full performance evaluation of the
// paper's Figures 7–13.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the reproduced
// results. The root package holds the per-figure benchmarks
// (bench_test.go); the implementation lives under internal/ and the
// runnable tools under cmd/ and examples/.
package epsilondb
