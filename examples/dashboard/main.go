// Dashboard: a bounded-staleness monitoring view over the real
// client-server stack — TCP, the binary wire protocol, clock-synchronized
// clients — the deployment shape of the paper's prototype (§6).
//
// A server hosts a fleet of metric counters. Writer clients (separate
// connections, deliberately skewed local clocks) stream increments. A
// dashboard client refreshes an aggregate with a generous import limit:
// it never blocks the writers and each refresh is guaranteed within the
// limit of a serializable snapshot. Finally the dashboard asks the
// server for its performance counters via the Stats probe.
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

const (
	numCounters = 8
	refreshes   = 10
	writers     = 3
)

func main() {
	// --- Server ---
	store := storage.NewStore(storage.Config{
		DefaultOIL: core.NoLimit,
		DefaultOEL: core.NoLimit,
	})
	for c := 0; c < numCounters; c++ {
		if _, err := store.Create(core.ObjectID(c), 0); err != nil {
			log.Fatal(err)
		}
	}
	serverClock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	srv := server.New(tso.NewEngine(store, tso.Options{Collector: col}), server.Options{
		Clock: serverClock,
		Logf:  func(string, ...any) {},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", addr)

	// --- Writers: skewed local clocks, corrected by the sync handshake ---
	stop := make(chan struct{})
	var sent atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w <= writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			skew := int64(w) * -50_000 // each writer's clock lags differently
			c, err := client.Dial(addr.String(), client.Options{
				Site:  w,
				Clock: tsgen.SkewedClock{Base: serverClock, Skew: skew},
			})
			if err != nil {
				log.Printf("writer %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				counter := core.ObjectID((w + i) % numCounters)
				p := core.NewUpdate(core.NoLimit).WriteDelta(counter, 1)
				if _, _, err := c.RunRetry(p, 0); err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
				sent.Add(1)
			}
		}()
	}

	// --- Dashboard: epsilon-bounded aggregate refreshes ---
	dash, err := client.Dial(addr.String(), client.Options{Site: 9, Clock: serverClock})
	if err != nil {
		log.Fatal(err)
	}
	defer dash.Close()
	const staleness = 50 // each refresh within 50 increments of a snapshot
	view := core.NewQuery(staleness)
	for c := 0; c < numCounters; c++ {
		view.Read(core.ObjectID(c))
	}
	for r := 1; r <= refreshes; r++ {
		res, attempts, err := dash.RunRetry(view, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refresh %2d: events=%-6d (±%d, attempts %d)\n", r, res.Sum, staleness, attempts)
	}

	close(stop)
	wg.Wait()

	snap, misses, err := dash.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writers sent %d increments; committed total %d\n", sent.Load(), store.TotalValue())
	fmt.Printf("server stats: %d commits, %d aborts, %d inconsistent ops, %d waits, %d proper-misses\n",
		snap.Commits, snap.Aborts(), snap.InconsistentOps(), snap.Waits, misses)
	if store.TotalValue() != sent.Load() {
		log.Fatal("committed total does not match increments sent")
	}
	fmt.Println("all increments accounted for ✓")
}
