// Quickstart: an embedded epsilondb engine, one update ET, and one query
// ET with a transaction import limit.
//
// The query runs while an update holds an uncommitted write — the
// situation that would block or abort under classic serializability —
// and still answers, because its import limit lets it view the
// uncommitted value as long as the inconsistency stays within bounds
// (ESR case 2). The printed sum is guaranteed to lie within TIL of a
// serializable result (§3.2.1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func main() {
	// An in-memory database of three accounts.
	store := storage.NewStore(storage.Config{
		DefaultOIL: core.NoLimit,
		DefaultOEL: core.NoLimit,
	})
	for id, balance := range map[core.ObjectID]core.Value{
		1: 5_000, 2: 7_500, 3: 2_500,
	} {
		if _, err := store.Create(id, balance); err != nil {
			log.Fatal(err)
		}
	}

	engine := tso.NewEngine(store, tso.Options{})
	clock := tsgen.NewGenerator(0, &tsgen.LogicalClock{})

	// An update ET deposits 120 into account 2 and leaves the write
	// uncommitted for a moment.
	update, err := engine.Begin(core.Update, clock.Next(), core.UnboundedSpec())
	if err != nil {
		log.Fatal(err)
	}
	newBalance, err := engine.WriteDelta(update, 2, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: account 2 pending balance %d (uncommitted)\n", newBalance)

	// A query ET sums all balances with a TIL of 500: it may view up to
	// 500 units of inconsistency in total — so the pending deposit of
	// 120 is admitted rather than blocking the query.
	spec := core.BoundSpec{Transaction: 500}
	query, err := engine.Begin(core.Query, clock.Next(), spec)
	if err != nil {
		log.Fatal(err)
	}
	var sum core.Value
	for _, account := range []core.ObjectID{1, 2, 3} {
		v, err := engine.Read(query, account)
		if err != nil {
			log.Fatalf("query read: %v", err)
		}
		sum += v
	}
	if err := engine.Commit(query); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: total %d (within ±500 of a serializable total)\n", sum)

	// The update commits; a zero-epsilon (serializable) query now sees
	// the exact total.
	if err := engine.Commit(update); err != nil {
		log.Fatal(err)
	}
	exact, err := engine.RunProgram(core.NewQuery(0, 1, 2, 3), clock.Next())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:  total %d (zero-epsilon query after commit)\n", exact.Sum)
}
