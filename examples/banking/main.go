// Banking: the paper's Figure 1 scenario — hierarchical inconsistency
// bounds over a bank's account tree.
//
// The bank groups accounts as overall → {company, preferred, personal},
// with company subdivided into com1 and com2. A bank-wide audit runs
// during business hours while tellers keep posting transactions. The
// audit states a transaction-level bound (TIL) plus per-group LIMITs, in
// the paper's own transaction language:
//
//	BEGIN Query TIL 10000
//	LIMIT company 4000
//	LIMIT preferred 3000
//	LIMIT personal 3000
//	LIMIT com1 200
//	...
//
// The engine checks every read bottom-up — object, groups, transaction —
// and the audit's answer is guaranteed within TIL of a serializable
// total, with the com1 subtree held to the much tighter 200.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnlang"
)

const accountsPerGroup = 4

func main() {
	// Build the Figure 1 hierarchy.
	schema := core.NewSchema()
	company := schema.MustAddGroup("company", core.RootGroup)
	com1 := schema.MustAddGroup("com1", company)
	com2 := schema.MustAddGroup("com2", company)
	preferred := schema.MustAddGroup("preferred", core.RootGroup)
	personal := schema.MustAddGroup("personal", core.RootGroup)

	store := storage.NewStore(storage.Config{
		DefaultOIL: core.NoLimit,
		DefaultOEL: core.NoLimit,
	})
	rng := rand.New(rand.NewSource(7))
	var accounts []core.ObjectID
	var trueTotal core.Value
	nextID := core.ObjectID(100)
	for _, group := range []core.GroupID{com1, com2, preferred, personal} {
		for i := 0; i < accountsPerGroup; i++ {
			balance := core.Value(1000 + rng.Intn(9000))
			if _, err := store.Create(nextID, balance); err != nil {
				log.Fatal(err)
			}
			if err := schema.Assign(nextID, group); err != nil {
				log.Fatal(err)
			}
			accounts = append(accounts, nextID)
			trueTotal += balance
			nextID++
		}
	}

	engine := tso.NewEngine(store, tso.Options{Schema: schema})
	clock := &tsgen.LogicalClock{}

	// Tellers: concurrent update ETs moving money between accounts
	// (zero-sum, so the consistent total never changes).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for teller := 1; teller <= 3; teller++ {
		teller := teller
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tsgen.NewGenerator(teller, clock)
			r := rand.New(rand.NewSource(int64(teller)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := accounts[r.Intn(len(accounts))]
				to := accounts[r.Intn(len(accounts))]
				if from == to {
					continue
				}
				amount := core.Value(1 + r.Intn(40))
				p := core.NewUpdate(core.NoLimit).
					WriteDelta(from, -amount).
					WriteDelta(to, amount)
				if _, _, err := engine.RunRetry(p, gen, 100); err != nil {
					log.Printf("teller %d: %v", teller, err)
					return
				}
			}
		}()
	}

	// The audit, written in the paper's transaction language with
	// hierarchical LIMIT statements.
	var script strings.Builder
	script.WriteString("BEGIN Query TIL 10000\n")
	script.WriteString("LIMIT company 4000\n")
	script.WriteString("LIMIT preferred 3000\n")
	script.WriteString("LIMIT personal 3000\n")
	script.WriteString("LIMIT com1 200\n")
	var exprs []string
	for i, acct := range accounts {
		fmt.Fprintf(&script, "t%d = Read %d\n", i, acct)
		exprs = append(exprs, fmt.Sprintf("t%d", i))
	}
	fmt.Fprintf(&script, "output(\"Bank-wide total: \", %s)\n", strings.Join(exprs, "+"))
	script.WriteString("COMMIT\n")

	parsed, err := txnlang.Parse(script.String())
	if err != nil {
		log.Fatal(err)
	}
	runner := txnlang.EngineRunner{Engine: engine, Gen: tsgen.NewGenerator(9, clock)}
	for round := 1; round <= 3; round++ {
		res, attempts, err := txnlang.RunRetry(parsed, runner, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		var total core.Value
		for _, v := range res.Env {
			total += v
		}
		diff := total - trueTotal
		if diff < 0 {
			diff = -diff
		}
		fmt.Printf("audit %d: %s  (consistent total %d, deviation %d ≤ TIL 10000, attempts %d)\n",
			round, res.Outputs[0].Text, trueTotal, diff, attempts)
		if diff > 10_000 {
			log.Fatalf("audit deviation %d exceeds the transaction import limit", diff)
		}
	}

	close(stop)
	wg.Wait()
	fmt.Printf("final committed total: %d (conserved)\n", store.TotalValue())
}
