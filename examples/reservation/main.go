// Reservation: an airline seat map under heavy booking traffic —
// the other domain the paper names as naturally epsilon-tolerant
// ("dollar amount of bank account and airplane seats in airline
// reservation systems", §2).
//
// Booking agents keep committing seat updates on a small set of popular
// flights while an availability display repeatedly sums the free seats.
// The display is run twice: once as a serializable query (TIL = 0) and
// once as an epsilon query that tolerates being off by a few seats.
// Under classic serializability the display keeps arriving late and
// retrying; with a seat-count epsilon it streams through. The example
// prints the retry counts side by side — Figure 9 in miniature.
//
//	go run ./examples/reservation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

const (
	numFlights   = 12
	initialSeats = 200
	displayRuns  = 40
)

func main() {
	store := storage.NewStore(storage.Config{
		DefaultOIL: core.NoLimit,
		DefaultOEL: core.NoLimit,
	})
	for f := 0; f < numFlights; f++ {
		if _, err := store.Create(core.ObjectID(f), initialSeats); err != nil {
			log.Fatal(err)
		}
	}
	col := &metrics.Collector{}
	engine := tso.NewEngine(store, tso.Options{Collector: col})
	clock := &tsgen.LogicalClock{}

	// Booking agents: sell a seat on one flight, return a seat on
	// another (net zero, so the true total stays fixed).
	stop := make(chan struct{})
	var bookings atomic.Int64
	var wg sync.WaitGroup
	for agent := 1; agent <= 3; agent++ {
		agent := agent
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tsgen.NewGenerator(agent, clock)
			r := rand.New(rand.NewSource(int64(agent)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sell := core.ObjectID(r.Intn(numFlights))
				back := core.ObjectID((int(sell) + 1 + r.Intn(numFlights-1)) % numFlights)
				// TEL = 0: bookings export no inconsistency, so the
				// epsilon display's deviation is bounded by its TIL
				// alone. (A nonzero TEL would let late bookings push a
				// running display beyond its import limit — the two
				// budgets are separate, §5.)
				p := core.NewUpdate(0).
					WriteDelta(sell, -1).
					WriteDelta(back, 1)
				// A touch of think time: immediate-retry loops with no
				// latency at all can livelock each other, which no real
				// client does.
				time.Sleep(time.Duration(100+r.Intn(200)) * time.Microsecond)
				if _, _, err := engine.RunRetry(p, gen, 50); err != nil {
					continue // lost a long conflict battle; book again
				}
				bookings.Add(1)
			}
		}()
	}

	// display refreshes the availability view displayRuns times. Each
	// read carries a little latency (a lookup is not free), which is what
	// makes the refresh genuinely overlap the booking stream — the
	// "lengthy query against ongoing updates" situation of §1. Retries
	// per refresh are capped: under serializability the display can
	// starve outright behind the bookings, the motivation for ESR.
	display := func(name string, til core.Distance) (attempts, starved int) {
		gen := tsgen.NewGenerator(8, clock)
		for run := 0; run < displayRuns; run++ {
			committed := false
			for try := 0; try < 25; try++ {
				attempts++
				txn, err := engine.Begin(core.Query, gen.Next(), core.BoundSpec{Transaction: til})
				if err != nil {
					log.Fatalf("%s display: %v", name, err)
				}
				var sum core.Value
				ok := true
				for f := 0; f < numFlights; f++ {
					time.Sleep(100 * time.Microsecond) // per-read latency
					v, err := engine.Read(txn, core.ObjectID(f))
					if err != nil {
						ok = false
						break
					}
					sum += v
				}
				if !ok {
					continue
				}
				if err := engine.Commit(txn); err != nil {
					continue
				}
				committed = true
				diff := sum - numFlights*initialSeats
				if diff < 0 {
					diff = -diff
				}
				if til > 0 && diff > til {
					log.Fatalf("%s display off by %d seats, beyond epsilon %d", name, diff, til)
				}
				break
			}
			if !committed {
				starved++
			}
		}
		return attempts, starved
	}

	srAttempts, srStarved := display("serializable", 0)
	esrAttempts, esrStarved := display("epsilon", 10) // off by ≤10 seats

	close(stop)
	wg.Wait()

	fmt.Printf("bookings committed while displays ran: %d\n", bookings.Load())
	fmt.Printf("serializable display: %d refreshes, %d attempts, %d gave up after 25 retries\n",
		displayRuns, srAttempts, srStarved)
	fmt.Printf("epsilon display:      %d refreshes, %d attempts, %d gave up — results within ±10 seats\n",
		displayRuns, esrAttempts, esrStarved)
	s := col.Snapshot()
	fmt.Printf("engine counters: %d commits, %d aborts, %d inconsistent reads admitted\n",
		s.Commits, s.Aborts(), s.InconsistentReads)
	if total := store.TotalValue(); total != numFlights*initialSeats {
		log.Fatalf("seat conservation violated: %d", total)
	}
	fmt.Println("seat total conserved ✓")
}
