#!/bin/sh
# CI entry point for the invariant-lint job (DESIGN.md §7).
#
# Builds the esr-lint binary and invokes it directly instead of using
# `go run`: go run collapses every nonzero child exit to 1, which would
# fold operational failures (exit 2: bad flags, load errors) into
# "findings" (exit 1) and let a broken lint setup masquerade as a code
# problem. The JSON report is echoed for the build log and, when jq is
# available (GitHub runners ship it), each unsuppressed diagnostic is
# re-emitted as a ::error workflow annotation so it lands on the
# offending line in the PR view.
set -eu

bin="$(mktemp -d)/esr-lint"
go build -o "$bin" ./cmd/esr-lint

status=0
out="$("$bin" -json "${@:-./...}")" || status=$?

printf '%s\n' "$out"

if [ "$status" -eq 1 ] && command -v jq >/dev/null 2>&1; then
	printf '%s\n' "$out" | jq -r \
		'.diagnostics[] | "::error file=\(.file),line=\(.line),col=\(.column),title=\(.analyzer)::\(.message)"'
fi
exit "$status"
