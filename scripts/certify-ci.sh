#!/bin/sh
# certify-ci.sh is the end-to-end oracle gate: it boots a real esr-server
# with -trace, drives real clients over TCP, shuts the server down
# gracefully, and hands the recorded trace to esr-check. Two rounds:
#
#   1. a mixed epsilon workload, which must be certified within bounds
#      (exit 0 from esr-check);
#   2. a zero-bound workload, which must additionally pass -zero: exact
#      conflict serializability, the paper's ε=0 special case.
#
# Any refutation fails CI: the trace schema, the engines' event
# emissions (statically guarded by the tracecomplete analyzer) and the
# checker itself are exercised as one pipeline.
set -eu
cd "$(dirname "$0")/.."

bindir="$(mktemp -d)"
tracedir="$(mktemp -d)"
server_pid=""
cleanup() {
	if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
		kill "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
	fi
	rm -rf "$bindir" "$tracedir"
}
trap cleanup EXIT INT TERM

go build -o "$bindir" ./cmd/esr-server ./cmd/esr-client ./cmd/esr-check

# run_round <name> <port> <client-level> [extra esr-check flags...]
run_round() {
	name="$1" port="$2" level="$3"
	shift 3
	trace="$tracedir/$name.jsonl"
	"$bindir/esr-server" -addr "127.0.0.1:$port" -objects 200 \
		-trace "$trace" -shutdown-grace 10s &
	server_pid=$!
	# Wait for the listener.
	i=0
	until "$bindir/esr-client" -addr "127.0.0.1:$port" -site 9 -txns 1 \
		-objects 200 -level "$level" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "certify-ci: server on :$port never became ready" >&2
			exit 2
		fi
		sleep 0.1
	done
	"$bindir/esr-client" -addr "127.0.0.1:$port" -site 1 -txns 150 \
		-objects 200 -level "$level" &
	c1=$!
	"$bindir/esr-client" -addr "127.0.0.1:$port" -site 2 -txns 150 \
		-objects 200 -level "$level" &
	c2=$!
	wait "$c1" "$c2"
	kill -TERM "$server_pid"
	wait "$server_pid" || true
	server_pid=""
	echo "certify-ci: checking $name trace"
	"$bindir/esr-check" "$@" "$trace"
}

run_round mixed 7431 high
run_round zero 7432 zero -zero

echo "certify-ci: all traces certified"
