#!/bin/sh
# bench.sh runs the hot-path micro-benchmarks plus a short open-loop
# load-generator smoke and writes the results as BENCH_hotpath.json, the
# machine-readable artifact CI archives so per-commit ns/op, allocs/op
# and throughput-under-load are comparable across runs. Each run is also
# appended as one line — git SHA, UTC timestamp, and the same numbers —
# to results/bench_trajectory.jsonl, so the performance trajectory
# across commits accumulates locally without diffing artifacts.
#
# The load smoke runs twice with a fixed seed: once continuous (the
# headline open-loop capacity and its speedup over the closed-loop
# single connection) and once at a capped -rate (latency under a load
# the server can absorb). Both runs certify their traces through the
# esrcheck oracle; a dirty certification makes esr-bench exit nonzero,
# which fails this script and the CI job with it.
#
# Usage: scripts/bench.sh [output.json]
set -eu

out="${1:-BENCH_hotpath.json}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
loadcont="$(mktemp)"
loadrate="$(mktemp)"
repl="$(mktemp)"
trap 'rm -f "$raw" "$loadcont" "$loadrate" "$repl"' EXIT

go test -run '^$' -bench 'EngineHotPath|WireRoundTrip|WALCommit' -benchmem -benchtime=1s . | tee "$raw"

# Standard benchmark lines look like:
#   BenchmarkEngineHotPath/serial-8  123456  987.6 ns/op  296 B/op  2 allocs/op
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

# Open-loop smoke: fixed seed, short windows. Continuous mode measures
# capacity (and must certify); the capped-rate run measures latency at a
# sustainable arrival rate.
go run ./cmd/esr-bench -load -seed 1 -duration 500ms -load-json "$loadcont"
go run ./cmd/esr-bench -load -seed 1 -duration 500ms -rate 2000 -load-json "$loadrate"

# Replica read-scaling smoke: two bounded-stale WAL followers must lift
# query throughput at least 1.7x over the primary alone (the binary's
# built-in -replica-min-scaleup gate), with the merged trace certified
# and zero-epsilon queries verifiably pinned to the primary.
go run ./cmd/esr-bench -replicas 2 -seed 1 -duration 400ms -replicas-json "$repl"

# Merge the load reports into the artifact: drop the closing brace and
# splice them in as top-level keys.
merged="$(mktemp)"
{
	sed '$d' "$out"
	printf '  ,"loadgen": %s\n' "$(tr -d '\n' < "$loadcont")"
	printf '  ,"loadgen_rate2000": %s\n' "$(tr -d '\n' < "$loadrate")"
	printf '  ,"replica_scaling": %s\n' "$(tr -d '\n' < "$repl")"
	printf '}\n'
} > "$merged"
mv "$merged" "$out"

echo "wrote $out"

mkdir -p results
sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=""
if ! git diff --quiet 2>/dev/null; then
	dirty="-dirty"
fi
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
printf '{"sha":"%s%s","time":"%s","bench":%s}\n' \
	"$sha" "$dirty" "$stamp" "$(tr -d '\n' < "$out")" \
	>> results/bench_trajectory.jsonl
echo "appended to results/bench_trajectory.jsonl"
