#!/bin/sh
# bench.sh runs the hot-path micro-benchmarks and writes the results as
# BENCH_hotpath.json, the machine-readable artifact CI archives so
# per-commit ns/op and allocs/op are comparable across runs. Each run is
# also appended as one line — git SHA, UTC timestamp, and the same
# numbers — to results/bench_trajectory.jsonl, so the performance
# trajectory across commits accumulates locally without diffing
# artifacts.
#
# Usage: scripts/bench.sh [output.json]
set -eu

out="${1:-BENCH_hotpath.json}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'EngineHotPath|WireRoundTrip|WALCommit' -benchmem -benchtime=1s . | tee "$raw"

# Standard benchmark lines look like:
#   BenchmarkEngineHotPath/serial-8  123456  987.6 ns/op  296 B/op  2 allocs/op
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

echo "wrote $out"

mkdir -p results
sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=""
if ! git diff --quiet 2>/dev/null; then
	dirty="-dirty"
fi
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
printf '{"sha":"%s%s","time":"%s","bench":%s}\n' \
	"$sha" "$dirty" "$stamp" "$(tr -d '\n' < "$out")" \
	>> results/bench_trajectory.jsonl
echo "appended to results/bench_trajectory.jsonl"
