#!/bin/sh
# Pre-merge check: vet, the repo's custom analyzer suite, the optional
# external linters, and the full test suite under the race detector.
# Equivalent to `make check`, for environments without make.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go run ./cmd/esr-lint ./...
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi
if command -v golangci-lint >/dev/null 2>&1; then
	golangci-lint run
else
	echo "golangci-lint not installed; skipping"
fi
go test -race ./...
