#!/bin/sh
# Pre-merge check: vet plus the full test suite under the race detector.
# Equivalent to `make check`, for environments without make.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
